// Netlist delta, mutation harness and the end-to-end ECO path
// (core/delta.h + gen/mutate.h + engine "eco").
#include "core/delta.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/vcycle.h"
#include "gen/mutate.h"
#include "gen/scaled.h"
#include "netlist/netlist.h"

namespace sfqpart {
namespace {

constexpr int kPlanes = 4;

Netlist small_scaled(std::uint64_t seed = 1) {
  ScaledParams params;
  params.name = "delta2000";
  params.num_gates = 2000;
  params.seed = seed;
  return build_scaled(params);
}

TEST(Mutate, DeterministicForAFixedSeed) {
  const Netlist before = small_scaled();
  MutateParams params;
  params.remove_fraction = 0.02;
  params.add_fraction = 0.02;
  params.seed = 7;
  MutateStats first_stats;
  MutateStats second_stats;
  const Netlist first = mutate_netlist(before, params, &first_stats);
  const Netlist second = mutate_netlist(before, params, &second_stats);
  EXPECT_EQ(first_stats.removed, second_stats.removed);
  EXPECT_EQ(first_stats.added, second_stats.added);
  ASSERT_EQ(first.num_gates(), second.num_gates());
  for (GateId g = 0; g < first.num_gates(); ++g) {
    EXPECT_EQ(first.gate(g).name, second.gate(g).name);
  }
  // A different seed mutates a different gate set.
  params.seed = 8;
  const Netlist third = mutate_netlist(before, params, nullptr);
  EXPECT_EQ(third.num_gates(), first.num_gates());
  bool any_difference = false;
  for (GateId g = 0; g < first.num_gates() && !any_difference; ++g) {
    any_difference = first.gate(g).name != third.gate(g).name;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Delta, IdenticalNetlistsHaveEmptyDelta) {
  const Netlist netlist = small_scaled();
  const NetlistDelta delta = compute_delta(netlist, netlist);
  EXPECT_TRUE(delta.added.empty());
  EXPECT_TRUE(delta.removed.empty());
  EXPECT_TRUE(delta.changed.empty());
  EXPECT_EQ(delta.dirty(), 0);
  EXPECT_EQ(delta.unchanged, netlist.num_partitionable_gates());
}

TEST(Delta, MatchesTheMutationStats) {
  const Netlist before = small_scaled();
  MutateParams params;
  params.seed = 3;
  MutateStats stats;
  const Netlist after = mutate_netlist(before, params, &stats);
  const NetlistDelta delta = compute_delta(before, after);
  EXPECT_EQ(static_cast<int>(delta.added.size()), stats.added);
  EXPECT_EQ(static_cast<int>(delta.removed.size()), stats.removed);
  // Rewired survivors show up as changed; blast radius stays a small
  // multiple of the direct edit for a 1% mutation.
  EXPECT_GT(stats.removed, 0);
  EXPECT_LT(delta.dirty(), before.num_gates() / 4);
}

TEST(Delta, WarmStartKeepsUnchangedPlanesAndLeavesDirtyUnassigned) {
  const Netlist before = small_scaled();
  VcycleOptions options;
  const VcycleResult parent = vcycle_partition(before, kPlanes, options);

  MutateParams params;
  params.seed = 5;
  const Netlist after = mutate_netlist(before, params, nullptr);
  const NetlistDelta delta = compute_delta(before, after);
  const InitialPartition warm =
      warm_start_from(parent.partition, before, after);
  ASSERT_EQ(static_cast<int>(warm.plane_of.size()), after.num_gates());

  std::vector<bool> dirty(static_cast<std::size_t>(after.num_gates()), false);
  for (const GateId g : delta.added) dirty[static_cast<std::size_t>(g)] = true;
  for (const GateId g : delta.changed) {
    dirty[static_cast<std::size_t>(g)] = true;
  }
  int inherited = 0;
  for (GateId g = 0; g < after.num_gates(); ++g) {
    const int plane = warm.plane_of[static_cast<std::size_t>(g)];
    if (!after.is_partitionable(g) || dirty[static_cast<std::size_t>(g)]) {
      EXPECT_EQ(plane, kUnassignedPlane) << after.gate(g).name;
      continue;
    }
    const GateId old = before.find_gate(after.gate(g).name.view());
    ASSERT_NE(old, kInvalidGate);
    EXPECT_EQ(plane, parent.partition.plane(old)) << after.gate(g).name;
    ++inherited;
  }
  EXPECT_EQ(inherited, delta.unchanged);
}

TEST(Delta, RepartitionRunsTheEcoEngineEndToEnd) {
  const Netlist before = small_scaled();
  VcycleOptions options;
  const VcycleResult parent = vcycle_partition(before, kPlanes, options);

  MutateParams params;
  params.seed = 9;
  const Netlist after = mutate_netlist(before, params, nullptr);
  const NetlistDelta delta = compute_delta(before, after);

  EngineContext context;
  context.num_planes = kPlanes;
  context.compare_scratch = true;
  auto run = repartition(before, parent.partition, after, context);
  ASSERT_TRUE(run.is_ok()) << run.status().message();
  for (GateId g = 0; g < after.num_gates(); ++g) {
    const int plane = run->partition.plane(g);
    if (after.is_partitionable(g)) {
      EXPECT_GE(plane, 0);
      EXPECT_LT(plane, kPlanes);
    } else {
      EXPECT_EQ(plane, kUnassignedPlane);
    }
  }
  EXPECT_EQ(run->counter("dirty_seeds"), static_cast<double>(delta.dirty()));
  EXPECT_GE(run->counter("dirty_gates"), run->counter("dirty_seeds"));
  // The incremental result tracks the scratch solve; a gross divergence
  // means the dirty-region restriction broke the cost model.
  EXPECT_LT(std::abs(run->counter("cost_drift_pct")), 25.0);
  // Determinism: the same ECO twice is bit-identical.
  auto again = repartition(before, parent.partition, after, context);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(run->partition.plane_of, again->partition.plane_of);
}

}  // namespace
}  // namespace sfqpart
