#include "core/coarsen.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/problem_view.h"
#include "gen/suite.h"
#include "util/rng.h"

namespace sfqpart {
namespace {

PartitionProblem mapped_problem(const char* circuit, int num_planes) {
  return PartitionProblem::from_netlist(build_mapped(circuit), num_planes);
}

TEST(Coarsen, ProjectionIsTotalAndOnto) {
  const PartitionProblem fine = mapped_problem("c432", 5);
  const ProblemView view(fine);
  const CoarseLevel level = coarsen_once(view, MatchOrder::kDegreeSorted);

  ASSERT_EQ(level.parent_of_fine.size(), static_cast<std::size_t>(fine.num_gates));
  std::vector<int> owners(static_cast<std::size_t>(level.problem.num_gates), 0);
  for (const int parent : level.parent_of_fine) {
    ASSERT_GE(parent, 0);
    ASSERT_LT(parent, level.problem.num_gates);
    ++owners[static_cast<std::size_t>(parent)];
  }
  for (const int count : owners) {
    EXPECT_GE(count, 1);  // onto: every coarse vertex owns a fine one
    EXPECT_LE(count, 2);  // a matching contracts at most pairs
  }
}

TEST(Coarsen, ProjectExpandsCoarseLabels) {
  const PartitionProblem fine = mapped_problem("ksa8", 3);
  const ProblemView view(fine);
  const CoarseLevel level = coarsen_once(view, MatchOrder::kDegreeSorted);

  std::vector<int> coarse_labels(static_cast<std::size_t>(level.problem.num_gates));
  for (std::size_t i = 0; i < coarse_labels.size(); ++i) {
    coarse_labels[i] = static_cast<int>(i % 3);
  }
  const std::vector<int> fine_labels = level.project(coarse_labels);
  ASSERT_EQ(fine_labels.size(), static_cast<std::size_t>(fine.num_gates));
  for (int v = 0; v < fine.num_gates; ++v) {
    EXPECT_EQ(fine_labels[static_cast<std::size_t>(v)],
              coarse_labels[static_cast<std::size_t>(
                  level.parent_of_fine[static_cast<std::size_t>(v)])]);
  }
}

TEST(Coarsen, PreservesTotalBiasAndArea) {
  const PartitionProblem fine = mapped_problem("c1908", 5);
  const ProblemView view(fine);
  const CoarseLevel level = coarsen_once(view, MatchOrder::kDegreeSorted);

  double fine_bias = 0.0, coarse_bias = 0.0;
  for (const double b : fine.bias) fine_bias += b;
  for (const double b : level.problem.bias) coarse_bias += b;
  EXPECT_NEAR(fine_bias, coarse_bias, 1e-9 * fine_bias);

  double fine_area = 0.0, coarse_area = 0.0;
  for (const double a : fine.area) fine_area += a;
  for (const double a : level.problem.area) coarse_area += a;
  EXPECT_NEAR(fine_area, coarse_area, 1e-9 * fine_area);
}

// The satellite bugfix this PR pins: the kDegreeSorted visit order is a
// pure function of the graph, so repeated builds agree exactly — no Rng
// draw-count dependence.
TEST(Coarsen, DegreeSortedOrderIsReproducible) {
  const PartitionProblem fine = mapped_problem("c1355", 5);
  const ProblemView view(fine);
  const CoarseLevel a = coarsen_once(view, MatchOrder::kDegreeSorted);
  const CoarseLevel b = coarsen_once(view, MatchOrder::kDegreeSorted);
  EXPECT_EQ(a.parent_of_fine, b.parent_of_fine);
  EXPECT_EQ(a.problem.num_gates, b.problem.num_gates);
  EXPECT_EQ(a.problem.edges, b.problem.edges);
}

TEST(Coarsen, LegacyShuffleMatchesRngState) {
  // The legacy order is deterministic given the Rng seed (and only the
  // seed): two fresh Rngs with the same seed give the same level.
  const PartitionProblem fine = mapped_problem("c499", 5);
  const ProblemView view(fine);
  Rng rng_a(7), rng_b(7);
  const CoarseLevel a = coarsen_once(view, MatchOrder::kLegacyShuffle, &rng_a);
  const CoarseLevel b = coarsen_once(view, MatchOrder::kLegacyShuffle, &rng_b);
  EXPECT_EQ(a.parent_of_fine, b.parent_of_fine);
}

TEST(Coarsen, LevelStackReachesTarget) {
  const PartitionProblem fine = mapped_problem("c1355", 5);
  CoarsenOptions options;
  options.coarse_target = 64;
  options.order = MatchOrder::kDegreeSorted;
  const LevelStack stack = build_level_stack(fine, options);
  ASSERT_GE(stack.num_levels(), 2);
  // Monotone shrink, and the floor 4*K is respected.
  int previous = fine.num_gates;
  for (const CoarseLevel& level : stack.levels) {
    EXPECT_LT(level.problem.num_gates, previous);
    EXPECT_GE(level.problem.num_gates, 4 * 5);
    previous = level.problem.num_gates;
  }
  EXPECT_EQ(&stack.coarsest(fine), &stack.levels.back().problem);
}

TEST(Coarsen, LevelStackCallbackSeesEveryLevel) {
  const PartitionProblem fine = mapped_problem("c1908", 5);
  CoarsenOptions options;
  options.coarse_target = 100;
  options.order = MatchOrder::kDegreeSorted;
  std::vector<int> seen_levels;
  std::vector<int> seen_sizes;
  const LevelStack stack = build_level_stack(
      fine, options, nullptr, [&](int level, const PartitionProblem& problem) {
        seen_levels.push_back(level);
        seen_sizes.push_back(problem.num_gates);
      });
  ASSERT_EQ(seen_levels.size(), static_cast<std::size_t>(stack.num_levels()));
  for (int i = 0; i < stack.num_levels(); ++i) {
    EXPECT_EQ(seen_levels[static_cast<std::size_t>(i)], i + 1);
    EXPECT_EQ(seen_sizes[static_cast<std::size_t>(i)],
              stack.levels[static_cast<std::size_t>(i)].problem.num_gates);
  }
}

}  // namespace
}  // namespace sfqpart
