#include "core/engine.h"

// EngineRegistry contract and golden-label parity.
//
// The golden arrays below were captured from the PRE-refactor entry points
// (Solver::run, multilevel_partition, anneal_partition, fm_kway_partition,
// layered_partition, random_partition) on ksa4 at K = 3, seed = 1, all
// other options at their defaults, immediately before the engines were
// ported to the registry. Each registry engine must reproduce its
// pre-refactor labels bit for bit — if one of these tests fails, an
// adapter silently changed an engine's option threading or seeding.
#include <algorithm>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/suite.h"
#include "netlist/netlist.h"
#include "obs/run_report.h"
#include "util/json.h"

namespace sfqpart {
namespace {

const std::vector<std::string> kBuiltins = {
    "annealing", "eco", "exact", "fm_kway", "gradient", "layered",
    "multilevel", "random", "vcycle"};

// The eco engine refuses to run cold; every-engine loops hand it an
// all-unassigned warm start (everything dirty = a full incremental solve).
InitialPartition all_dirty_warm(const Netlist& netlist) {
  InitialPartition warm;
  warm.plane_of.assign(static_cast<std::size_t>(netlist.num_gates()),
                       kUnassignedPlane);
  return warm;
}

TEST(EngineRegistry, NamesAreSortedStableAndComplete) {
  const std::vector<std::string> names = EngineRegistry::names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string& expected : kBuiltins) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing engine " << expected;
  }
  // Stable across calls.
  EXPECT_EQ(names, EngineRegistry::names());
}

TEST(EngineRegistry, UnknownNameIsNotFoundStatusNotACrash) {
  const auto engine = EngineRegistry::create("does-not-exist");
  ASSERT_FALSE(engine.is_ok());
  EXPECT_TRUE(engine.status().is_not_found());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotFound);
  // The message lists what IS available.
  EXPECT_NE(engine.status().message().find("gradient"), std::string::npos);
}

TEST(EngineRegistry, RegisterRejectsDuplicatesAndEmptyNames) {
  EXPECT_TRUE(EngineRegistry::register_engine("", nullptr)
                  .is_invalid_argument());
  // Registering over a built-in must fail without clobbering it.
  const auto duplicate = EngineRegistry::register_engine(
      "gradient", [] { return std::unique_ptr<PartitionEngine>(); });
  EXPECT_TRUE(duplicate.is_invalid_argument());
  EXPECT_TRUE(EngineRegistry::create("gradient").is_ok());
}

TEST(EngineRegistry, EveryEngineReportsItsRegistryName) {
  for (const std::string& name : EngineRegistry::names()) {
    const auto engine = EngineRegistry::create(name);
    ASSERT_TRUE(engine.is_ok()) << engine.status().message();
    EXPECT_EQ((*engine)->name(), name);
    EXPECT_STRNE((*engine)->description(), "");
  }
}

TEST(EngineRegistry, EveryEngineAdvertisesStructuredOptionSpecs) {
  for (const std::string& name : EngineRegistry::names()) {
    const auto engine = EngineRegistry::create(name);
    ASSERT_TRUE(engine.is_ok()) << engine.status().message();
    const std::vector<OptionSpec> specs = (*engine)->describe_options();
    ASSERT_FALSE(specs.empty()) << name;
    bool has_planes = false;
    for (const OptionSpec& spec : specs) {
      EXPECT_FALSE(spec.name.empty());
      EXPECT_FALSE(spec.doc.empty()) << name << ": " << spec.name;
      has_planes |= spec.name == "planes";
      // The JSON form must round-trip through the strict parser.
      const auto parsed = Json::parse(spec.to_json().dump(0));
      ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
      EXPECT_EQ(parsed->find("name")->as_string(), spec.name);
      EXPECT_NE(parsed->find("type"), nullptr);
      EXPECT_NE(parsed->find("default"), nullptr);
    }
    EXPECT_TRUE(has_planes) << name << " must advertise 'planes'";
  }
}

TEST(EngineOptions, ApplyValidatesAndCanonicalizes) {
  const auto engine = EngineRegistry::create("gradient");
  ASSERT_TRUE(engine.is_ok());
  const std::vector<OptionSpec> specs = (*engine)->describe_options();

  // Valid options land on the context fields.
  EngineContext context;
  std::string canonical;
  auto options = Json::parse(
      R"({"planes": 3, "seed": 7, "refine": true, "c2": 0.25})");
  ASSERT_TRUE(options.is_ok());
  ASSERT_TRUE(apply_engine_options(specs, *options, context, &canonical));
  EXPECT_EQ(context.num_planes, 3);
  EXPECT_EQ(context.seed, 7u);
  EXPECT_TRUE(context.refine);
  EXPECT_EQ(context.weights.c2, 0.25);

  // The canonical form ignores option order and spelling details.
  EngineContext reordered_context;
  std::string reordered;
  auto reordered_options = Json::parse(
      R"({ "c2": 2.5e-1, "refine": true, "seed": 7.0, "planes": 3 })");
  ASSERT_TRUE(reordered_options.is_ok());
  ASSERT_TRUE(apply_engine_options(specs, *reordered_options,
                                   reordered_context, &reordered));
  EXPECT_EQ(canonical, reordered);

  // ... but not value differences.
  EngineContext other_context;
  std::string other;
  auto other_options = Json::parse(R"({"planes": 4})");
  ASSERT_TRUE(other_options.is_ok());
  ASSERT_TRUE(apply_engine_options(specs, *other_options, other_context, &other));
  EXPECT_NE(canonical, other);

  // threads never participates in the canonical form (the determinism
  // contract makes it result-neutral).
  EngineContext threaded_context;
  std::string threaded;
  auto threaded_options = Json::parse(R"({"planes": 4, "threads": 8})");
  ASSERT_TRUE(threaded_options.is_ok());
  ASSERT_TRUE(apply_engine_options(specs, *threaded_options, threaded_context,
                                   &threaded));
  EXPECT_EQ(other, threaded);
  EXPECT_EQ(threaded_context.threads, 8);

  // Unknown names, type mismatches and out-of-range values all fail.
  EngineContext scratch;
  EXPECT_TRUE(apply_engine_options(specs, *Json::parse(R"({"plane": 3})"),
                                   scratch)
                  .is_invalid_argument());
  EXPECT_TRUE(apply_engine_options(specs, *Json::parse(R"({"planes": true})"),
                                   scratch)
                  .is_invalid_argument());
  EXPECT_TRUE(apply_engine_options(specs, *Json::parse(R"({"planes": 1})"),
                                   scratch)
                  .is_invalid_argument());
  EXPECT_TRUE(apply_engine_options(specs, *Json::parse(R"({"restarts": 1.5})"),
                                   scratch)
                  .is_invalid_argument());
}

TEST(EngineContext, ValidateRejectsOutOfRangeKnobsUniformly) {
  EngineContext planes;
  planes.num_planes = 1;
  EXPECT_TRUE(planes.validate().is_invalid_argument());

  EngineContext restarts;
  restarts.restarts = -1;
  EXPECT_TRUE(restarts.validate().is_invalid_argument());

  EngineContext threads;
  threads.threads = -2;
  EXPECT_TRUE(threads.validate().is_invalid_argument());

  EngineContext exponent;
  exponent.weights.distance_exponent = 0;
  EXPECT_TRUE(exponent.validate().is_invalid_argument());

  EXPECT_TRUE(EngineContext{}.validate().is_ok());
}

// Every engine rejects a bad context with the same uniform Status — no
// engine-dependent asserts or hangs.
TEST(EngineRegistry, EveryEngineRejectsInvalidContextWithStatus) {
  const Netlist netlist = build_mapped("ksa4");
  for (const std::string& name : EngineRegistry::names()) {
    const auto engine = EngineRegistry::create(name);
    ASSERT_TRUE(engine.is_ok());
    EngineContext bad;
    bad.num_planes = 1;
    const auto run = (*engine)->run(netlist, bad);
    ASSERT_FALSE(run.is_ok()) << name;
    EXPECT_TRUE(run.status().is_invalid_argument()) << name;
  }
}

TEST(EngineRegistry, EveryEngineSurvivesZeroGateNetlist) {
  Netlist netlist;
  for (const std::string& name : EngineRegistry::names()) {
    const auto engine = EngineRegistry::create(name);
    ASSERT_TRUE(engine.is_ok());
    const auto run = (*engine)->run(netlist, EngineContext{});
    ASSERT_FALSE(run.is_ok()) << name;
    EXPECT_TRUE(run.status().is_invalid_argument()) << name;
    EXPECT_NE(run.status().message().find("partitionable"), std::string::npos)
        << name;
  }
}

TEST(EngineRegistry, EveryEngineSurvivesOneGateNetlist) {
  Netlist netlist;
  netlist.add_gate_of_kind("g", CellKind::kJtl);
  const InitialPartition warm = all_dirty_warm(netlist);
  for (const std::string& name : EngineRegistry::names()) {
    const auto engine = EngineRegistry::create(name);
    ASSERT_TRUE(engine.is_ok());
    EngineContext context;
    context.num_planes = 2;
    if (name == "eco") context.warm_start = &warm;
    const auto run = (*engine)->run(netlist, context);
    ASSERT_TRUE(run.is_ok()) << name << ": " << run.status().message();
    const int plane = run->partition.plane(0);
    EXPECT_GE(plane, 0) << name;
    EXPECT_LT(plane, 2) << name;
  }
}

// --- Golden-label parity with the pre-refactor entry points -------------
// ksa4, K = 3, seed = 1, defaults otherwise; see the header comment.

constexpr int kGradient[] = {-1, -1, -1, -1, -1, -1, -1, -1, 2, 2, 1, 2, 2, 1, 0, 0, 2, 2, 0, 0, 0, 0, 1, 0, 1, 0, 1, 0, -1, 1, -1, 1, -1, 0, -1, -1, 2, 2, 2, 2, 2, 1, 0, 0, 2, 1, 1, 0, 1, 1, 0, 2, 2, 1, 0, 2, 1, 2, 2, 1, 1, 1, 0, 1, 1, 2, 2, 2, 1, 0, 0, 1, 1, 0, 0};
constexpr int kMultilevel[] = {-1, -1, -1, -1, -1, -1, -1, -1, 2, 2, 1, 2, 2, 1, 0, 0, 2, 2, 0, 0, 0, 0, 1, 0, 1, 0, 1, 0, -1, 1, -1, 1, -1, 0, -1, -1, 2, 2, 2, 2, 2, 1, 0, 0, 2, 1, 1, 0, 1, 1, 0, 2, 2, 1, 0, 2, 1, 2, 2, 1, 1, 1, 0, 1, 1, 2, 2, 2, 1, 0, 0, 1, 1, 0, 0};
constexpr int kAnnealing[] = {-1, -1, -1, -1, -1, -1, -1, -1, 2, 2, 2, 2, 0, 0, 0, 0, 2, 1, 1, 1, 1, 0, 1, 0, 1, 1, 1, 1, -1, 2, -1, 0, -1, 1, -1, -1, 2, 1, 2, 2, 2, 2, 0, 0, 1, 0, 0, 0, 1, 1, 1, 2, 2, 2, 0, 2, 2, 2, 2, 0, 0, 0, 0, 2, 1, 2, 2, 1, 0, 1, 0, 0, 0, 0, 1};
constexpr int kFmKway[] = {-1, -1, -1, -1, -1, -1, -1, -1, 1, 1, 2, 2, 0, 0, 1, 1, 0, 0, 2, 2, 2, 0, 0, 0, 2, 2, 0, 0, -1, 2, -1, 0, -1, 1, -1, -1, 2, 2, 1, 1, 1, 1, 0, 0, 2, 1, 1, 1, 1, 0, 0, 2, 2, 2, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2, 1, 1, 2, 0, 2, 0, 0, 1, 0, 0};
constexpr int kLayered[] = {-1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, -1, 1, -1, 2, -1, 2, -1, -1, 1, 1, 1, 2, 2, 2, 1, 2, 1, 1, 2, 2, 1, 2, 2, 2, 2, 2, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 2};
constexpr int kRandom[] = {-1, -1, -1, -1, -1, -1, -1, -1, 0, 1, 0, 1, 0, 2, 2, 1, 0, 0, 2, 2, 1, 0, 1, 0, 2, 0, 1, 2, -1, 2, -1, 0, -1, 1, -1, -1, 2, 0, 1, 0, 2, 2, 0, 1, 1, 2, 2, 0, 1, 1, 1, 2, 2, 1, 2, 1, 0, 0, 0, 1, 2, 1, 2, 2, 1, 1, 0, 1, 1, 0, 2, 0, 0, 0, 2};

struct GoldenCase {
  const char* engine;
  const int* labels;
  std::size_t size;
};

class EngineGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(EngineGolden, ReproducesPreRefactorLabelsBitForBit) {
  const GoldenCase& golden = GetParam();
  const Netlist netlist = build_mapped("ksa4");
  ASSERT_EQ(static_cast<std::size_t>(netlist.num_gates()), golden.size);

  const auto engine = EngineRegistry::create(golden.engine);
  ASSERT_TRUE(engine.is_ok()) << engine.status().message();
  EngineContext context;
  context.num_planes = 3;
  context.seed = 1;
  const auto run = (*engine)->run(netlist, context);
  ASSERT_TRUE(run.is_ok()) << run.status().message();

  const std::vector<int> expected(golden.labels, golden.labels + golden.size);
  EXPECT_EQ(run->partition.plane_of, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Builtins, EngineGolden,
    ::testing::Values(GoldenCase{"gradient", kGradient, std::size(kGradient)},
                      GoldenCase{"multilevel", kMultilevel, std::size(kMultilevel)},
                      GoldenCase{"annealing", kAnnealing, std::size(kAnnealing)},
                      GoldenCase{"fm_kway", kFmKway, std::size(kFmKway)},
                      GoldenCase{"layered", kLayered, std::size(kLayered)},
                      GoldenCase{"random", kRandom, std::size(kRandom)}),
    [](const auto& info) { return std::string(info.param.engine); });

// Every engine's registry run produces a RunReport whose JSON carries the
// registry engine name (the "engine" field of sfqpart.run_report.v2).
TEST(EngineRegistry, RunReportCarriesEngineNameForEveryEngine) {
  const Netlist netlist = build_mapped("ksa4");
  const InitialPartition warm = all_dirty_warm(netlist);
  for (const std::string& name : EngineRegistry::names()) {
    if (name == "exact") continue;  // rejects ksa4 (> max_gates by design)
    const auto engine = EngineRegistry::create(name);
    ASSERT_TRUE(engine.is_ok());
    obs::RunReport report;
    EngineContext context;
    context.num_planes = 3;
    context.observer = &report;
    if (name == "eco") context.warm_start = &warm;
    ASSERT_TRUE((*engine)->run(netlist, context).is_ok()) << name;
    const std::string json = report.to_json().dump();
    EXPECT_NE(json.find("\"engine\": \"" + name + "\""), std::string::npos)
        << name << " report: " << json.substr(0, 200);
  }
}

// The normalized EngineRun: discrete terms scored by the shared CostModel,
// a weighted total consistent with them, and counters reachable by name.
TEST(EngineRun, NormalizedFieldsAreConsistent) {
  const Netlist netlist = build_mapped("ksa4");
  const InitialPartition warm = all_dirty_warm(netlist);
  for (const std::string& name : EngineRegistry::names()) {
    if (name == "exact") continue;  // rejects ksa4 (> max_gates by design)
    const auto engine = EngineRegistry::create(name);
    ASSERT_TRUE(engine.is_ok());
    EngineContext context;
    context.num_planes = 3;
    if (name == "eco") context.warm_start = &warm;
    const auto run = (*engine)->run(netlist, context);
    ASSERT_TRUE(run.is_ok()) << name;
    EXPECT_EQ(run->discrete_total, run->discrete_terms.total(context.weights))
        << name;
    EXPECT_GE(run->wall_ms, 0.0) << name;
    EXPECT_EQ(run->counter("no-such-counter"), 0.0) << name;
  }
}

}  // namespace
}  // namespace sfqpart
