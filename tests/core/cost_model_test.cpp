// Cost model checks, including finite-difference validation of the
// analytic gradients (DESIGN.md section 1 documents why the paper's
// printed eq. 10 is kept as a separate style).
#include "core/cost_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/soft_assign.h"
#include "util/rng.h"

namespace sfqpart {
namespace {

PartitionProblem tiny_problem(int num_gates, int num_planes, std::uint64_t seed,
                              int num_edges) {
  PartitionProblem problem;
  problem.num_gates = num_gates;
  problem.num_planes = num_planes;
  Rng rng(seed);
  for (int i = 0; i < num_gates; ++i) {
    problem.gate_ids.push_back(i);
    problem.bias.push_back(rng.uniform(0.5, 1.5));
    problem.area.push_back(rng.uniform(2000.0, 7000.0));
  }
  for (int e = 0; e < num_edges; ++e) {
    const int a = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(num_gates)));
    int b = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(num_gates)));
    if (b == a) b = (b + 1) % num_gates;
    problem.edges.emplace_back(a, b);
  }
  return problem;
}

TEST(CostModel, F1HandComputed) {
  // Two gates, one edge, K=3. One-hot planes 0 and 2 -> distance 2.
  PartitionProblem problem;
  problem.num_gates = 2;
  problem.num_planes = 3;
  problem.bias = {1.0, 1.0};
  problem.area = {1.0, 1.0};
  problem.gate_ids = {0, 1};
  problem.edges = {{0, 1}};
  const CostModel model(problem, CostWeights{});
  const CostTerms terms = model.evaluate_discrete({0, 2});
  // N1 = |E| (K-1)^4 = 16; |l0-l1|^4 = 16 -> F1 = 1 (the worst case).
  EXPECT_NEAR(terms.f1, 1.0, 1e-12);
  const CostTerms near_terms = model.evaluate_discrete({0, 1});
  EXPECT_NEAR(near_terms.f1, 1.0 / 16.0, 1e-12);
  const CostTerms same = model.evaluate_discrete({1, 1});
  EXPECT_NEAR(same.f1, 0.0, 1e-12);
}

TEST(CostModel, F2VarianceHandComputed) {
  // Three unit-bias gates on K=2 planes, split 2/1.
  PartitionProblem problem;
  problem.num_gates = 3;
  problem.num_planes = 2;
  problem.bias = {1.0, 1.0, 1.0};
  problem.area = {1.0, 1.0, 1.0};
  problem.gate_ids = {0, 1, 2};
  const CostModel model(problem, CostWeights{});
  const CostTerms terms = model.evaluate_discrete({0, 0, 1});
  // Bbar = 1.5, deviations +-0.5 -> sum 0.5; /K=0.25.
  // N2 = (K-1)*(3/2)^2 = 2.25 -> F2 = 0.25/2.25.
  EXPECT_NEAR(terms.f2, 0.25 / 2.25, 1e-12);
  EXPECT_NEAR(terms.f3, 0.25 / 2.25, 1e-12);  // same weights for area
}

TEST(CostModel, PerfectBalanceZeroF2F3) {
  PartitionProblem problem = tiny_problem(4, 2, 3, 0);
  problem.bias = {1.0, 1.0, 1.0, 1.0};
  problem.area = {2.0, 2.0, 2.0, 2.0};
  const CostModel model(problem, CostWeights{});
  const CostTerms terms = model.evaluate_discrete({0, 1, 0, 1});
  EXPECT_NEAR(terms.f2, 0.0, 1e-12);
  EXPECT_NEAR(terms.f3, 0.0, 1e-12);
}

TEST(CostModel, DiscreteF4IsTheOneHotConstant) {
  const PartitionProblem problem = tiny_problem(10, 4, 5, 12);
  const CostModel model(problem, CostWeights{});
  const CostTerms terms = model.evaluate_discrete({0, 1, 2, 3, 0, 1, 2, 3, 0, 1});
  // F4(one-hot) = -G (K-1)/K^2 / N4 = -1/(K^2 (K-1)).
  const double expected = -1.0 / (16.0 * 3.0);
  EXPECT_NEAR(terms.f4, expected, 1e-12);
}

TEST(CostModel, EvaluateDiscreteMatchesOneHotEvaluate) {
  const PartitionProblem problem = tiny_problem(20, 5, 7, 30);
  const CostModel model(problem, CostWeights{});
  const std::vector<int> labels{0, 1, 2, 3, 4, 0, 1, 2, 3, 4,
                                0, 1, 2, 3, 4, 0, 1, 2, 3, 4};
  const CostTerms a = model.evaluate_discrete(labels);
  const CostTerms b = model.evaluate(one_hot(labels, 5));
  EXPECT_DOUBLE_EQ(a.f1, b.f1);
  EXPECT_DOUBLE_EQ(a.f2, b.f2);
  EXPECT_DOUBLE_EQ(a.f3, b.f3);
  EXPECT_DOUBLE_EQ(a.f4, b.f4);
}

// Central-difference validation of the analytic gradient of the weighted
// total, over random soft assignments.
class GradientCheck : public ::testing::TestWithParam<int> {};

TEST_P(GradientCheck, AnalyticMatchesFiniteDifference) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const int num_gates = 8;
  const int num_planes = 2 + GetParam() % 4;
  PartitionProblem problem = tiny_problem(num_gates, num_planes, seed, 14);
  CostWeights weights;
  weights.c1 = 0.8;
  weights.c2 = 0.6;
  weights.c3 = 0.4;
  weights.c4 = 1.2;
  const CostModel model(problem, weights, GradientStyle::kAnalytic);

  Rng rng(seed * 13 + 1);
  Matrix w = random_soft_assignment(num_gates, num_planes, rng);
  // Move off row-sum-1 so all F4 behaviour is exercised.
  w(0, 0) = std::min(1.0, w(0, 0) + 0.2);

  Matrix grad;
  model.evaluate_with_gradient(w, grad);

  const double h = 1e-6;
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t k = 0; k < w.cols(); ++k) {
      Matrix wp = w;
      Matrix wm = w;
      wp(i, k) += h;
      wm(i, k) -= h;
      const double fp = model.evaluate(wp).total(weights);
      const double fm = model.evaluate(wm).total(weights);
      const double numeric = (fp - fm) / (2 * h);
      EXPECT_NEAR(grad(i, k), numeric, 1e-5 + 1e-3 * std::abs(numeric))
          << "entry (" << i << "," << k << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradientCheck, ::testing::Range(1, 7));

TEST(CostModel, PaperGradientStyleDiffersOnF4) {
  const PartitionProblem problem = tiny_problem(6, 3, 11, 8);
  CostWeights f4_only;
  f4_only.c1 = 0.0;
  f4_only.c2 = 0.0;
  f4_only.c3 = 0.0;
  f4_only.c4 = 1.0;
  const CostModel analytic(problem, f4_only, GradientStyle::kAnalytic);
  const CostModel paper(problem, f4_only, GradientStyle::kPaperEq10);
  Rng rng(3);
  const Matrix w = random_soft_assignment(6, 3, rng);
  Matrix ga;
  Matrix gp;
  analytic.evaluate_with_gradient(w, ga);
  paper.evaluate_with_gradient(w, gp);
  EXPECT_NE(ga, gp);  // eq. 10 as printed is not the exact derivative
}

TEST(CostModel, GradientStylesAgreeOnF2F3) {
  const PartitionProblem problem = tiny_problem(6, 3, 11, 8);
  CostWeights balance_only;
  balance_only.c1 = 0.0;
  balance_only.c2 = 1.0;
  balance_only.c3 = 1.0;
  balance_only.c4 = 0.0;
  const CostModel analytic(problem, balance_only, GradientStyle::kAnalytic);
  const CostModel paper(problem, balance_only, GradientStyle::kPaperEq10);
  Rng rng(4);
  const Matrix w = random_soft_assignment(6, 3, rng);
  Matrix ga;
  Matrix gp;
  analytic.evaluate_with_gradient(w, ga);
  paper.evaluate_with_gradient(w, gp);
  EXPECT_EQ(ga, gp);
}

TEST(CostModel, DistanceExponentAblation) {
  PartitionProblem problem;
  problem.num_gates = 2;
  problem.num_planes = 4;
  problem.bias = {1.0, 1.0};
  problem.area = {1.0, 1.0};
  problem.gate_ids = {0, 1};
  problem.edges = {{0, 1}};
  CostWeights quartic;  // default exponent 4
  CostWeights quadratic;
  quadratic.distance_exponent = 2;
  const CostModel model4(problem, quartic);
  const CostModel model2(problem, quadratic);
  // Distance 2 of max 3: relative cost is (2/3)^4 vs (2/3)^2.
  EXPECT_NEAR(model4.evaluate_discrete({0, 2}).f1, std::pow(2.0 / 3.0, 4), 1e-12);
  EXPECT_NEAR(model2.evaluate_discrete({0, 2}).f1, std::pow(2.0 / 3.0, 2), 1e-12);
}

// The workspace overloads are pure plumbing: routing scratch through a
// caller-owned Workspace must not change a single bit relative to the
// transient-scratch overloads, and the terms reported with a gradient
// must be the terms reported without one.
TEST(CostModel, WorkspaceOverloadsMatchTransientOverloads) {
  const PartitionProblem problem = tiny_problem(24, 4, 17, 40);
  const CostModel model(problem, CostWeights{});
  Rng rng(8);
  const Matrix w = random_soft_assignment(24, 4, rng);

  CostModel::Workspace ws;
  const CostTerms plain = model.evaluate(w);
  const CostTerms via_ws = model.evaluate(w, ws);
  EXPECT_EQ(plain.f1, via_ws.f1);
  EXPECT_EQ(plain.f2, via_ws.f2);
  EXPECT_EQ(plain.f3, via_ws.f3);
  EXPECT_EQ(plain.f4, via_ws.f4);

  Matrix grad_plain;
  Matrix grad_ws;
  const CostTerms with_grad = model.evaluate_with_gradient(w, grad_plain);
  const CostTerms with_grad_ws = model.evaluate_with_gradient(w, grad_ws, ws);
  EXPECT_EQ(grad_plain, grad_ws);
  EXPECT_EQ(with_grad.f1, with_grad_ws.f1);
  EXPECT_EQ(with_grad.f4, with_grad_ws.f4);
  // evaluate() and evaluate_with_gradient() must agree exactly on the
  // terms even though the fused pass computes F4 alongside the gradient.
  EXPECT_EQ(plain.f1, with_grad.f1);
  EXPECT_EQ(plain.f2, with_grad.f2);
  EXPECT_EQ(plain.f3, with_grad.f3);
  EXPECT_EQ(plain.f4, with_grad.f4);
}

TEST(CostModel, GatherAndScatterEnginesAgreeOnGradients) {
  const PartitionProblem problem = tiny_problem(30, 5, 23, 55);
  CostModel model(problem, CostWeights{});
  Rng rng(12);
  const Matrix w = random_soft_assignment(30, 5, rng);

  Matrix gather;
  model.set_gradient_engine(GradientEngine::kCsrGather);
  const CostTerms gather_terms = model.evaluate_with_gradient(w, gather);
  Matrix scatter;
  model.set_gradient_engine(GradientEngine::kSerialScatter);
  const CostTerms scatter_terms = model.evaluate_with_gradient(w, scatter);
  EXPECT_EQ(gather, scatter);
  EXPECT_EQ(gather_terms.f1, scatter_terms.f1);
  EXPECT_EQ(gather_terms.f4, scatter_terms.f4);
}

TEST(CostModel, DegenerateProblemsStayFinite) {
  PartitionProblem problem;  // no gates, no edges
  problem.num_planes = 3;
  const CostModel model(problem, CostWeights{});
  const CostTerms terms = model.evaluate(Matrix(0, 3));
  EXPECT_TRUE(std::isfinite(terms.total(CostWeights{})));
}

}  // namespace
}  // namespace sfqpart
