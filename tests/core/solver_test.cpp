#include "core/solver.h"

#include <atomic>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/suite.h"
#include "obs/observer.h"
#include "util/thread_pool.h"

namespace sfqpart {
namespace {

TEST(Solver, RunPartitionsEveryPartitionableGate) {
  const Netlist netlist = build_mapped("ksa4");
  const auto result = Solver().run(netlist);
  ASSERT_TRUE(result.is_ok()) << result.status().message();
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.is_partitionable(g)) {
      EXPECT_NE(result->partition.plane(g), kUnassignedPlane);
      EXPECT_LT(result->partition.plane(g), 5);
    } else {
      EXPECT_EQ(result->partition.plane(g), kUnassignedPlane);
    }
  }
}

TEST(Solver, RejectsInvalidConfigWithStatusInsteadOfAsserting) {
  const Netlist netlist = build_mapped("ksa4");

  SolverConfig too_few_planes;
  too_few_planes.num_planes = 1;
  EXPECT_FALSE(Solver(too_few_planes).run(netlist).is_ok());

  SolverConfig no_restarts;
  no_restarts.restarts = 0;
  EXPECT_FALSE(Solver(no_restarts).run(netlist).is_ok());

  SolverConfig negative_threads;
  negative_threads.threads = -2;
  EXPECT_FALSE(Solver(negative_threads).run(netlist).is_ok());

  SolverConfig bad_rate;
  bad_rate.optimizer.learning_rate = 0.0;
  const auto status = Solver(bad_rate).run(netlist);
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.status().message().find("learning_rate"), std::string::npos);

  SolverConfig bad_exponent;
  bad_exponent.weights.distance_exponent = 0;
  EXPECT_FALSE(Solver(bad_exponent).run(netlist).is_ok());
}

// inf passes a "> 0" check and nan passes nothing loudly; both used to
// slip through validate() and poison every cost. parse_double accepts the
// "inf"/"nan" spellings, so config plumbing can realistically produce
// these values.
TEST(Solver, RejectsNonFiniteConfigValues) {
  const Netlist netlist = build_mapped("ksa4");
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();

  for (const double bad : {inf, -inf, nan}) {
    SolverConfig rate;
    rate.optimizer.learning_rate = bad;
    const auto rate_status = Solver(rate).run(netlist);
    ASSERT_FALSE(rate_status.is_ok());
    EXPECT_NE(rate_status.status().message().find("finite"), std::string::npos);

    SolverConfig margin;
    margin.optimizer.margin = bad;
    EXPECT_FALSE(Solver(margin).run(netlist).is_ok());
  }

  SolverConfig c1;
  c1.weights.c1 = nan;
  const auto c1_status = Solver(c1).run(netlist);
  ASSERT_FALSE(c1_status.is_ok());
  EXPECT_NE(c1_status.status().message().find("weights.c1"), std::string::npos);

  SolverConfig c4;
  c4.weights.c4 = inf;
  EXPECT_FALSE(Solver(c4).run(netlist).is_ok());
}

TEST(Solver, RejectsProblemWithoutPartitionableGates) {
  PartitionProblem empty;
  empty.num_planes = 4;
  const auto solved = Solver().solve(empty);
  ASSERT_FALSE(solved.is_ok());
  EXPECT_NE(solved.status().message().find("partitionable"), std::string::npos);
}

TEST(Solver, EffectiveThreadsResolvesZeroToHardware) {
  SolverConfig hardware;
  hardware.threads = 0;
  EXPECT_EQ(Solver(hardware).effective_threads(),
            ThreadPool::hardware_concurrency());
  SolverConfig four;
  four.threads = 4;
  EXPECT_EQ(Solver(four).effective_threads(), 4);
  EXPECT_EQ(Solver().effective_threads(), 1);
}

TEST(Solver, ConfigRoundTripsThroughConstructor) {
  SolverConfig options;
  options.num_planes = 7;
  options.restarts = 9;
  options.seed = 1234;
  options.threads = 3;
  options.refine = true;
  options.weights.c2 = 0.5;
  options.optimizer.max_iterations = 123;
  const Solver solver(options);
  const SolverConfig& config = solver.config();
  EXPECT_EQ(config.num_planes, 7);
  EXPECT_EQ(config.restarts, 9);
  EXPECT_EQ(config.seed, 1234u);
  EXPECT_EQ(config.threads, 3);
  EXPECT_TRUE(config.refine);
  EXPECT_EQ(config.weights.c2, 0.5);
  EXPECT_EQ(config.optimizer.max_iterations, 123);
}

// Replaces the retired SolverConfig::progress callback test: the observer
// event stream is now the only live-progress surface, and it must see
// every restart even with concurrent workers.
TEST(Solver, ObserverSeesEveryRestart) {
  struct IterationRecorder final : obs::SolverObserver {
    // Serialized by the Solver's TraceSink lock.
    std::vector<obs::IterationEvent> events;
    void on_iteration(const obs::IterationEvent& e) override {
      events.push_back(e);
    }
  };

  const Netlist netlist = build_mapped("ksa4");
  IterationRecorder recorder;
  SolverConfig config;
  config.restarts = 3;
  config.threads = 4;
  config.observer = &recorder;
  const auto result = Solver(std::move(config)).run(netlist);
  ASSERT_TRUE(result.is_ok()) << result.status().message();

  ASSERT_FALSE(recorder.events.empty());
  std::vector<bool> seen(3, false);
  int cost_ok = 0;
  for (const obs::IterationEvent& e : recorder.events) {
    ASSERT_GE(e.restart, 0);
    ASSERT_LT(e.restart, 3);
    seen[static_cast<std::size_t>(e.restart)] = true;
    EXPECT_GE(e.iteration, 0);
    if (e.cost >= 0.0) ++cost_ok;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
  EXPECT_GT(cost_ok, 0);
}

TEST(Solver, RunOnPrebuiltProblemMatchesNetlistRun) {
  const Netlist netlist = build_mapped("ksa4");
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);
  const auto via_netlist = Solver().run(netlist);
  const auto via_problem = Solver().run(problem, netlist.num_gates());
  ASSERT_TRUE(via_netlist.is_ok());
  ASSERT_TRUE(via_problem.is_ok());
  EXPECT_EQ(via_netlist->partition.plane_of, via_problem->partition.plane_of);
  EXPECT_EQ(via_netlist->discrete_total, via_problem->discrete_total);
}

}  // namespace
}  // namespace sfqpart
