// Property tests: symmetries and invariances the cost formulation implies.
// These guard the *semantics* of F1..F4 rather than single values.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/soft_assign.h"
#include "util/rng.h"

namespace sfqpart {
namespace {

PartitionProblem random_problem(int num_gates, int num_planes, std::uint64_t seed) {
  PartitionProblem problem;
  problem.num_gates = num_gates;
  problem.num_planes = num_planes;
  Rng rng(seed);
  for (int i = 0; i < num_gates; ++i) {
    problem.gate_ids.push_back(i);
    problem.bias.push_back(rng.uniform(0.3, 1.5));
    problem.area.push_back(rng.uniform(1500.0, 7000.0));
  }
  for (int e = 0; e < 2 * num_gates; ++e) {
    const int a = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(num_gates)));
    int b = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(num_gates)));
    if (a == b) b = (b + 1) % num_gates;
    problem.edges.emplace_back(a, b);
  }
  return problem;
}

std::vector<int> random_labels(int num_gates, int num_planes, Rng& rng) {
  std::vector<int> labels;
  for (int i = 0; i < num_gates; ++i) {
    labels.push_back(static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(num_planes))));
  }
  return labels;
}

class CostProperties : public ::testing::TestWithParam<int> {
 protected:
  std::uint64_t seed() const { return static_cast<std::uint64_t>(GetParam()); }
};

// Mirroring the plane stack (k -> K-1-k) flips the chip upside down:
// every |plane distance| and every per-plane sum is preserved.
TEST_P(CostProperties, MirrorSymmetry) {
  const PartitionProblem problem = random_problem(40, 5, seed());
  const CostModel model(problem, CostWeights{});
  Rng rng(seed() + 7);
  const std::vector<int> labels = random_labels(40, 5, rng);
  std::vector<int> mirrored = labels;
  for (int& label : mirrored) label = 4 - label;
  const CostTerms a = model.evaluate_discrete(labels);
  const CostTerms b = model.evaluate_discrete(mirrored);
  EXPECT_NEAR(a.f1, b.f1, 1e-12);
  EXPECT_NEAR(a.f2, b.f2, 1e-12);
  EXPECT_NEAR(a.f3, b.f3, 1e-12);
}

// F2 is normalized by Bbar^2, so rescaling every gate's bias current (a
// different cell library calibration) must not change it.
TEST_P(CostProperties, BiasScaleInvariance) {
  PartitionProblem problem = random_problem(30, 4, seed());
  PartitionProblem scaled = problem;
  for (double& b : scaled.bias) b *= 3.7;
  const CostModel model(problem, CostWeights{});
  const CostModel scaled_model(scaled, CostWeights{});
  Rng rng(seed() + 13);
  const std::vector<int> labels = random_labels(30, 4, rng);
  EXPECT_NEAR(model.evaluate_discrete(labels).f2,
              scaled_model.evaluate_discrete(labels).f2, 1e-12);
}

// Likewise F3 under area rescaling (units of um^2 vs mm^2 are arbitrary).
TEST_P(CostProperties, AreaScaleInvariance) {
  PartitionProblem problem = random_problem(30, 4, seed());
  PartitionProblem scaled = problem;
  for (double& a : scaled.area) a *= 1e-6;
  const CostModel model(problem, CostWeights{});
  const CostModel scaled_model(scaled, CostWeights{});
  Rng rng(seed() + 17);
  const std::vector<int> labels = random_labels(30, 4, rng);
  EXPECT_NEAR(model.evaluate_discrete(labels).f3,
              scaled_model.evaluate_discrete(labels).f3, 1e-9);
}

// Duplicating every edge doubles F1's numerator and N1 alike.
TEST_P(CostProperties, EdgeMultiplicityNormalization) {
  PartitionProblem problem = random_problem(25, 4, seed());
  PartitionProblem doubled = problem;
  doubled.edges.insert(doubled.edges.end(), problem.edges.begin(),
                       problem.edges.end());
  const CostModel model(problem, CostWeights{});
  const CostModel doubled_model(doubled, CostWeights{});
  Rng rng(seed() + 23);
  const std::vector<int> labels = random_labels(25, 4, rng);
  EXPECT_NEAR(model.evaluate_discrete(labels).f1,
              doubled_model.evaluate_discrete(labels).f1, 1e-12);
}

// F1 bounds: 0 (everything on one plane) up to 1 (every edge at the
// maximum distance); any assignment lies in between.
TEST_P(CostProperties, F1NormalizedRange) {
  const PartitionProblem problem = random_problem(30, 5, seed());
  const CostModel model(problem, CostWeights{});
  Rng rng(seed() + 29);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<int> labels = random_labels(30, 5, rng);
    const double f1 = model.evaluate_discrete(labels).f1;
    EXPECT_GE(f1, 0.0);
    EXPECT_LE(f1, 1.0 + 1e-12);
  }
  EXPECT_NEAR(model.evaluate_discrete(std::vector<int>(30, 2)).f1, 0.0, 1e-12);
}

// The relaxed cost at a one-hot W equals the discrete cost: the relaxation
// is exact on the original feasible set (the Lagrangian argument of
// section IV-B).
TEST_P(CostProperties, RelaxationExactOnFeasibleSet) {
  const PartitionProblem problem = random_problem(20, 4, seed());
  const CostModel model(problem, CostWeights{});
  Rng rng(seed() + 31);
  const std::vector<int> labels = random_labels(20, 4, rng);
  const CostTerms relaxed = model.evaluate(one_hot(labels, 4));
  const CostTerms discrete = model.evaluate_discrete(labels);
  EXPECT_DOUBLE_EQ(relaxed.f1, discrete.f1);
  EXPECT_DOUBLE_EQ(relaxed.f2, discrete.f2);
  EXPECT_DOUBLE_EQ(relaxed.f3, discrete.f3);
  EXPECT_DOUBLE_EQ(relaxed.f4, discrete.f4);
}

// Gradient of the total is translation-covariant in the labels: pushing
// every row of W by the same plane permutation mirror flips the F1 label
// gradient's sign pattern. (Weaker smoke property: gradient at the uniform
// W is identical across rows with identical bias/area, since all planes
// look alike.)
TEST_P(CostProperties, UniformRowsUniformGradient) {
  PartitionProblem problem = random_problem(10, 3, seed());
  for (double& b : problem.bias) b = 1.0;
  for (double& a : problem.area) a = 1.0;
  problem.edges.clear();  // isolate F2/F3/F4
  const CostModel model(problem, CostWeights{});
  Matrix w(10, 3, 1.0 / 3.0);
  Matrix grad;
  model.evaluate_with_gradient(w, grad);
  for (std::size_t r = 1; r < w.rows(); ++r) {
    for (std::size_t k = 0; k < w.cols(); ++k) {
      EXPECT_NEAR(grad(r, k), grad(0, k), 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostProperties, ::testing::Range(1, 8));

}  // namespace
}  // namespace sfqpart
