// run_sweep (core/sweep.h): cross-product enumeration, per-point parity
// with standalone cold runs, failure propagation and the Pareto front.
#include "core/sweep.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "gen/suite.h"
#include "util/json.h"

namespace sfqpart {
namespace {

SweepOptions planes_sweep(const std::string& engine = "vcycle") {
  SweepOptions options;
  options.engine = engine;
  SweepAxis planes;
  planes.name = "planes";
  planes.values = {Json::number(3LL), Json::number(4LL)};
  options.axes.push_back(planes);
  return options;
}

TEST(Sweep, EnumeratesTheCrossProductLastAxisFastest) {
  const Netlist netlist = build_mapped("ksa4");
  SweepOptions options = planes_sweep();
  SweepAxis style;
  style.name = "refine_style";
  style.values = {Json::string("banded"), Json::string("buckets")};
  options.axes.push_back(style);
  auto result = run_sweep(netlist, options);
  ASSERT_TRUE(result.is_ok()) << result.status().message();
  ASSERT_EQ(result->points.size(), 4u);
  EXPECT_EQ(result->points[0].index, (std::vector<int>{0, 0}));
  EXPECT_EQ(result->points[1].index, (std::vector<int>{0, 1}));
  EXPECT_EQ(result->points[2].index, (std::vector<int>{1, 0}));
  EXPECT_EQ(result->points[3].index, (std::vector<int>{1, 1}));
  for (const SweepPoint& point : result->points) {
    EXPECT_NE(point.canonical.find("refine_style="), std::string::npos);
    EXPECT_EQ(point.canonical.find("threads="), std::string::npos)
        << "threads must stay out of the canonical string";
  }
}

TEST(Sweep, ColdPointsAreByteIdenticalToStandaloneRuns) {
  const Netlist netlist = build_mapped("ksa4");
  const SweepOptions options = planes_sweep();
  auto result = run_sweep(netlist, options);
  ASSERT_TRUE(result.is_ok()) << result.status().message();

  auto engine = EngineRegistry::create(options.engine);
  ASSERT_TRUE(engine.is_ok());
  const std::vector<OptionSpec> specs = (*engine)->describe_options();
  for (const SweepPoint& point : result->points) {
    EngineContext context;
    ASSERT_TRUE(
        apply_engine_options(specs, point.options, context, nullptr).is_ok());
    auto standalone = (*engine)->run(netlist, context);
    ASSERT_TRUE(standalone.is_ok()) << standalone.status().message();
    EXPECT_EQ(point.run.partition.plane_of, standalone->partition.plane_of)
        << "point " << point.canonical;
    EXPECT_EQ(point.run.discrete_total, standalone->discrete_total);
  }
}

TEST(Sweep, DeterministicIncludingTheJsonArtifact) {
  const Netlist netlist = build_mapped("ksa4");
  const SweepOptions options = planes_sweep();
  auto first = run_sweep(netlist, options);
  auto second = run_sweep(netlist, options);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first->to_json("ksa4").dump(), second->to_json("ksa4").dump());
}

TEST(Sweep, JsonCarriesSchemaPointsAndParetoIndices) {
  const Netlist netlist = build_mapped("ksa4");
  auto result = run_sweep(netlist, planes_sweep());
  ASSERT_TRUE(result.is_ok());
  const Json doc = result->to_json("ksa4");
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "sfqpart.sweep.v1");
  ASSERT_NE(doc.find("points"), nullptr);
  EXPECT_EQ(doc.find("points")->size(), result->points.size());
  ASSERT_NE(doc.find("pareto"), nullptr);
  // At least one point is always non-dominated.
  EXPECT_GE(result->pareto.size(), 1u);
  for (const int index : result->pareto) {
    EXPECT_TRUE(result->points[static_cast<std::size_t>(index)].pareto);
  }
}

TEST(Sweep, BadOptionValueAbortsTheWholeSweepNamingThePoint) {
  const Netlist netlist = build_mapped("ksa4");
  SweepOptions options;
  options.engine = "gradient";
  SweepAxis axis;
  axis.name = "distance_exponent";
  axis.values = {Json::number(0LL), Json::number(4LL)};  // 0 out of range
  options.axes.push_back(axis);
  auto result = run_sweep(netlist, options);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("distance_exponent"),
            std::string::npos);
}

TEST(Sweep, RejectsEmptyDuplicateAndOversizedAxes) {
  const Netlist netlist = build_mapped("ksa4");
  SweepOptions no_axes;
  EXPECT_FALSE(run_sweep(netlist, no_axes).is_ok());

  SweepOptions duplicate = planes_sweep();
  duplicate.axes.push_back(duplicate.axes[0]);
  EXPECT_FALSE(run_sweep(netlist, duplicate).is_ok());

  SweepOptions oversized;
  SweepAxis big;
  big.name = "seed";
  for (long long v = 0; v < kMaxSweepPoints + 1; ++v) {
    big.values.push_back(Json::number(v));
  }
  oversized.axes.push_back(big);
  auto result = run_sweep(netlist, oversized);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("cross-product"), std::string::npos);
}

TEST(Sweep, WarmNeighborsStaysDeterministicAndMarksSeededPoints) {
  const Netlist netlist = build_mapped("ksa4");
  SweepOptions options = planes_sweep("fm_kway");
  options.warm_neighbors = true;
  SweepAxis seeds;
  seeds.name = "seed";
  seeds.values = {Json::number(1LL), Json::number(2LL)};
  options.axes.push_back(seeds);
  auto first = run_sweep(netlist, options);
  auto second = run_sweep(netlist, options);
  ASSERT_TRUE(first.is_ok()) << first.status().message();
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first->to_json("ksa4").dump(), second->to_json("ksa4").dump());
  bool any_warm = false;
  for (const SweepPoint& point : first->points) {
    any_warm = any_warm || point.warm_started;
  }
  // The very first point has no completed neighbor; later same-K points do.
  EXPECT_FALSE(first->points[0].warm_started);
  EXPECT_TRUE(any_warm);
}

}  // namespace
}  // namespace sfqpart
