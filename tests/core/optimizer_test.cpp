#include "core/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/soft_assign.h"
#include "util/rng.h"

namespace sfqpart {
namespace {

PartitionProblem chain_problem(int num_gates, int num_planes) {
  PartitionProblem problem;
  problem.num_gates = num_gates;
  problem.num_planes = num_planes;
  for (int i = 0; i < num_gates; ++i) {
    problem.gate_ids.push_back(i);
    problem.bias.push_back(1.0);
    problem.area.push_back(1.0);
    if (i > 0) problem.edges.emplace_back(i - 1, i);
  }
  return problem;
}

TEST(Optimizer, CostDecreasesMonotonically) {
  const PartitionProblem problem = chain_problem(40, 4);
  const CostModel model(problem, CostWeights{});
  Rng rng(1);
  OptimizerOptions options;
  options.record_trace = true;
  const OptimizerResult result = run_gradient_descent(
      model, random_soft_assignment(40, 4, rng), options);
  ASSERT_GE(result.cost_trace.size(), 2u);
  for (std::size_t i = 1; i < result.cost_trace.size(); ++i) {
    // Normalized-step descent with clipping: allow tiny non-monotonic
    // wiggle, but the trend must never jump upward.
    EXPECT_LE(result.cost_trace[i], result.cost_trace[i - 1] + 1e-3) << i;
  }
  EXPECT_LT(result.cost_trace.back(), result.cost_trace.front());
}

TEST(Optimizer, StopsOnMargin) {
  const PartitionProblem problem = chain_problem(30, 3);
  const CostModel model(problem, CostWeights{});
  Rng rng(2);
  OptimizerOptions options;
  options.margin = 1e-4;  // Algorithm 1's published margin
  options.max_iterations = 10000;
  const OptimizerResult result = run_gradient_descent(
      model, random_soft_assignment(30, 3, rng), options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, options.max_iterations);
}

TEST(Optimizer, RespectsMaxIterations) {
  const PartitionProblem problem = chain_problem(30, 3);
  const CostModel model(problem, CostWeights{});
  Rng rng(3);
  OptimizerOptions options;
  options.margin = 0.0;  // never satisfied
  options.max_iterations = 7;
  const OptimizerResult result = run_gradient_descent(
      model, random_soft_assignment(30, 3, rng), options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 7);
}

TEST(Optimizer, KeepsWInUnitBox) {
  const PartitionProblem problem = chain_problem(25, 5);
  const CostModel model(problem, CostWeights{});
  Rng rng(4);
  const OptimizerResult result =
      run_gradient_descent(model, random_soft_assignment(25, 5, rng), {});
  for (const double value : result.w.flat()) {
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
  }
}

TEST(Optimizer, RowsStayNearOneHotSum) {
  // F4 should keep row sums near 1 without explicit normalization.
  const PartitionProblem problem = chain_problem(30, 4);
  const CostModel model(problem, CostWeights{});
  Rng rng(5);
  const OptimizerResult result =
      run_gradient_descent(model, random_soft_assignment(30, 4, rng), {});
  for (std::size_t r = 0; r < result.w.rows(); ++r) {
    double sum = 0.0;
    for (const double v : result.w.row(r)) sum += v;
    EXPECT_NEAR(sum, 1.0, 0.35) << "row " << r;
  }
}

TEST(Optimizer, DeterministicForSameStart) {
  const PartitionProblem problem = chain_problem(20, 3);
  const CostModel model(problem, CostWeights{});
  Rng rng_a(6);
  Rng rng_b(6);
  const OptimizerResult a =
      run_gradient_descent(model, random_soft_assignment(20, 3, rng_a), {});
  const OptimizerResult b =
      run_gradient_descent(model, random_soft_assignment(20, 3, rng_b), {});
  EXPECT_EQ(a.w, b.w);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Optimizer, PaperStyleTerminatesWithFiniteCost) {
  // Equation 10 as printed is not the exact derivative (DESIGN.md sec. 1),
  // so the trace need not be monotone; the run must still terminate inside
  // the box with finite cost. (partitioner_test checks its end quality.)
  const PartitionProblem problem = chain_problem(40, 4);
  const CostModel model(problem, CostWeights{}, GradientStyle::kPaperEq10);
  Rng rng(7);
  OptimizerOptions options;
  options.record_trace = true;
  const OptimizerResult result = run_gradient_descent(
      model, random_soft_assignment(40, 4, rng), options);
  for (const double cost : result.cost_trace) {
    EXPECT_TRUE(std::isfinite(cost));
  }
  for (const double value : result.w.flat()) {
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
  }
}

TEST(Optimizer, RawStepModeRuns) {
  // normalize_step off reproduces Algorithm 1's raw update; it still has
  // to terminate and stay in the box.
  const PartitionProblem problem = chain_problem(20, 3);
  const CostModel model(problem, CostWeights{});
  Rng rng(8);
  OptimizerOptions options;
  options.normalize_step = false;
  options.learning_rate = 1.0;
  const OptimizerResult result = run_gradient_descent(
      model, random_soft_assignment(20, 3, rng), options);
  for (const double value : result.w.flat()) {
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
  }
}

}  // namespace
}  // namespace sfqpart
