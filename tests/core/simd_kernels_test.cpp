// The kernel-tier dispatch and bit-identity suite (DESIGN.md section 15).
//
// Default-mode contract: every vector tier produces BIT-identical results
// to the scalar tier — per kernel (the dispatch probe's synthetic shapes,
// covering vector-block tails, partial plane groups and CSR tails) and
// end-to-end (whole gradient-descent solves compared label-for-label and
// bit-for-bit on every cost term). fast_math is the opt-in exception and
// is bounded by an explicit relative-error tolerance instead.
#include <cmath>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/simd/dispatch.h"
#include "core/soft_assign.h"
#include "core/solver.h"
#include "gen/suite.h"
#include "util/rng.h"

namespace sfqpart {
namespace {

using simd::Tier;

// Restores the ambient dispatch decision after each test, whatever a
// test did with force/reset/env.
class SimdDispatchTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("SFQPART_KERNELS");
    simd::reset_dispatch_for_testing();
  }
};

std::vector<Tier> available_tiers() {
  std::vector<Tier> tiers = {Tier::kScalar};
  if (simd::tier_available(Tier::kAvx2)) tiers.push_back(Tier::kAvx2);
  if (simd::tier_available(Tier::kAvx512)) tiers.push_back(Tier::kAvx512);
  return tiers;
}

TEST_F(SimdDispatchTest, InfoIsConsistent) {
  const simd::DispatchInfo& info = simd::dispatch_info();
  EXPECT_TRUE(simd::tier_available(info.detected));
  EXPECT_LE(static_cast<int>(info.requested), static_cast<int>(info.detected));
  EXPECT_LE(static_cast<int>(info.active), static_cast<int>(info.requested));
  EXPECT_STREQ(simd::kernels().name, simd::tier_name(info.active));
}

// The per-kernel identity suite: the probe runs every kernel of the tier
// (aggregate with and without F4, f1_term, edge_grad, fused_gate,
// step_aggregate, step_clamp, max_abs) over shapes with vector-block
// tails and partial plane groups and compares every output bit for bit
// against the scalar tier.
TEST_F(SimdDispatchTest, AllAvailableTiersPassBitIdentityProbe) {
  for (const Tier tier : available_tiers()) {
    EXPECT_TRUE(simd::probe_tier(tier)) << simd::tier_name(tier);
  }
}

TEST_F(SimdDispatchTest, EnvOverrideClampsDown) {
  setenv("SFQPART_KERNELS", "scalar", 1);
  simd::reset_dispatch_for_testing();
  EXPECT_TRUE(simd::dispatch_info().env_override);
  EXPECT_EQ(simd::dispatch_info().active, Tier::kScalar);
  EXPECT_STREQ(simd::kernels().name, "scalar");

  // An up-request can never enable an ISA beyond what was detected.
  setenv("SFQPART_KERNELS", "avx512", 1);
  simd::reset_dispatch_for_testing();
  EXPECT_LE(static_cast<int>(simd::dispatch_info().requested),
            static_cast<int>(simd::dispatch_info().detected));

  // Unknown values are ignored (no override, full-width detection).
  setenv("SFQPART_KERNELS", "sse9", 1);
  simd::reset_dispatch_for_testing();
  EXPECT_FALSE(simd::dispatch_info().env_override);
  EXPECT_EQ(simd::dispatch_info().requested, simd::dispatch_info().detected);
}

TEST_F(SimdDispatchTest, ForceTierClampsToAvailable) {
  const Tier got = simd::force_tier_for_testing(Tier::kAvx512);
  EXPECT_TRUE(simd::tier_available(got));
  EXPECT_TRUE(simd::dispatch_info().forced);
  EXPECT_STREQ(simd::kernels().name, simd::tier_name(got));
  simd::reset_dispatch_for_testing();
  EXPECT_FALSE(simd::dispatch_info().forced);
}

LabelResult solve_small(const PartitionProblem& problem) {
  SolverConfig config;
  config.num_planes = problem.num_planes;
  config.restarts = 3;
  config.seed = 7;
  const auto solved = Solver(std::move(config)).solve(problem);
  EXPECT_TRUE(solved.is_ok()) << solved.status().message();
  return *solved;
}

// End-to-end: a whole multi-restart descent (aggregate, edge pass, fused
// fill, step_and_aggregate, max-abs, hardening) per tier, compared
// bitwise. This is the pin that keeps golden labels tier-independent.
TEST_F(SimdDispatchTest, EndToEndDescentBitIdenticalAcrossTiers) {
  const Netlist netlist = build_mapped("ksa8");
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);

  simd::force_tier_for_testing(Tier::kScalar);
  const LabelResult reference = solve_small(problem);

  for (const Tier tier : available_tiers()) {
    if (tier == Tier::kScalar) continue;
    simd::force_tier_for_testing(tier);
    const LabelResult got = solve_small(problem);
    EXPECT_EQ(got.labels, reference.labels) << simd::tier_name(tier);
    EXPECT_EQ(got.soft_terms.f1, reference.soft_terms.f1);
    EXPECT_EQ(got.soft_terms.f2, reference.soft_terms.f2);
    EXPECT_EQ(got.soft_terms.f3, reference.soft_terms.f3);
    EXPECT_EQ(got.soft_terms.f4, reference.soft_terms.f4);
    EXPECT_EQ(got.discrete_total, reference.discrete_total);
    EXPECT_EQ(got.iterations, reference.iterations);
    EXPECT_EQ(got.winning_restart, reference.winning_restart);
  }
}

// The fused evaluate/gradient entry points agree with each other and the
// optimizer's step fusion is bit-identical to the unfused step + eval on
// every tier (including scalar — the fusion itself must not drift).
TEST_F(SimdDispatchTest, StepFusionMatchesUnfusedStep) {
  const Netlist netlist = build_mapped("id4");
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);
  const CostModel model(problem, CostWeights{});

  for (const Tier tier : available_tiers()) {
    simd::force_tier_for_testing(tier);
    Rng rng(11);
    const Matrix w0 = random_soft_assignment(problem.num_gates,
                                             problem.num_planes, rng);

    // Unfused: evaluate gradient, clamp-step by hand, evaluate again.
    CostModel::Workspace ws_a;
    Matrix w_a = w0;
    Matrix grad_a;
    model.evaluate_with_gradient(w_a, grad_a, ws_a);
    const double scale = 0.19;
    for (std::size_t i = 0; i < w_a.rows(); ++i) {
      auto row = w_a.row(i);
      const auto grow = grad_a.row(i);
      for (std::size_t kk = 0; kk < w_a.cols(); ++kk) {
        row[kk] = std::clamp(row[kk] - scale * grow[kk], 0.0, 1.0);
      }
    }
    Matrix grad_unfused;
    const CostTerms unfused =
        model.evaluate_with_gradient(w_a, grad_unfused, ws_a);

    // Fused: same W0, step_and_aggregate + aggregated gradient.
    CostModel::Workspace ws_b;
    Matrix w_b = w0;
    Matrix grad_b;
    model.evaluate_with_gradient(w_b, grad_b, ws_b);
    model.step_and_aggregate(w_b, grad_b, scale, ws_b);
    Matrix grad_fused;
    const CostTerms fused =
        model.evaluate_with_gradient_aggregated(w_b, grad_fused, ws_b);

    EXPECT_EQ(w_a, w_b) << simd::tier_name(tier);
    EXPECT_EQ(unfused.f1, fused.f1);
    EXPECT_EQ(unfused.f2, fused.f2);
    EXPECT_EQ(unfused.f3, fused.f3);
    EXPECT_EQ(unfused.f4, fused.f4);
    EXPECT_EQ(grad_unfused, grad_fused);
  }
}

// Gradient padding lanes must stay exactly zero (the optimizer's flat
// max-abs and step passes scan them).
TEST_F(SimdDispatchTest, GradientPaddingStaysZero) {
  const Netlist netlist = build_mapped("id4");
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);
  const CostModel model(problem, CostWeights{});

  for (const Tier tier : available_tiers()) {
    simd::force_tier_for_testing(tier);
    Rng rng(3);
    const Matrix w = random_soft_assignment(problem.num_gates,
                                            problem.num_planes, rng);
    Matrix grad;
    CostModel::Workspace ws;
    model.evaluate_with_gradient(w, grad, ws);
    const auto flat = grad.flat();
    for (std::size_t r = 0; r < grad.rows(); ++r) {
      for (std::size_t c = grad.cols(); c < grad.stride(); ++c) {
        ASSERT_EQ(flat[r * grad.stride() + c], 0.0)
            << simd::tier_name(tier) << " row " << r << " lane " << c;
      }
    }
  }
}

// fast_math A/B: reassociated reductions must stay within an explicit
// relative-error bound of the exact kernels — and must change nothing at
// all on tiers without fast variants (scalar).
TEST_F(SimdDispatchTest, FastMathStaysWithinTolerance) {
  const Netlist netlist = build_mapped("ksa8");
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);

  CostModel exact(problem, CostWeights{});
  CostModel fast(problem, CostWeights{});
  fast.set_fast_math(true);
  EXPECT_TRUE(fast.fast_math());

  // The reassociation only changes the order of ~degree/~lane-count long
  // sums of O(1) doubles; 1e-12 relative slack is orders of magnitude
  // above the worst case while still catching any real kernel bug.
  constexpr double kRelTol = 1e-12;
  const auto rel_close = [](double a, double b) {
    const double scale = std::max({std::abs(a), std::abs(b), 1e-30});
    return std::abs(a - b) / scale <= kRelTol;
  };

  for (const Tier tier : available_tiers()) {
    simd::force_tier_for_testing(tier);
    Rng rng(23);
    const Matrix w = random_soft_assignment(problem.num_gates,
                                            problem.num_planes, rng);
    Matrix grad_exact, grad_fast;
    CostModel::Workspace ws_a, ws_b;
    const CostTerms te = exact.evaluate_with_gradient(w, grad_exact, ws_a);
    const CostTerms tf = fast.evaluate_with_gradient(w, grad_fast, ws_b);

    const bool has_fast_variants =
        simd::kernels().edge_grad_fast != nullptr;
    if (!has_fast_variants) {
      // No fast kernels on this tier: fast_math must be a strict no-op.
      EXPECT_EQ(te.f1, tf.f1) << simd::tier_name(tier);
      EXPECT_EQ(grad_exact, grad_fast);
      continue;
    }
    EXPECT_TRUE(rel_close(te.f1, tf.f1))
        << simd::tier_name(tier) << " f1 " << te.f1 << " vs " << tf.f1;
    EXPECT_EQ(te.f2, tf.f2);  // F2/F3 never reassociate
    EXPECT_EQ(te.f3, tf.f3);
    EXPECT_TRUE(rel_close(te.f4, tf.f4))
        << simd::tier_name(tier) << " f4 " << te.f4 << " vs " << tf.f4;
    ASSERT_EQ(grad_exact.rows(), grad_fast.rows());
    for (std::size_t i = 0; i < grad_exact.rows(); ++i) {
      const auto re = grad_exact.row(i);
      const auto rf = grad_fast.row(i);
      for (std::size_t kk = 0; kk < grad_exact.cols(); ++kk) {
        ASSERT_TRUE(rel_close(re[kk], rf[kk]))
            << simd::tier_name(tier) << " gate " << i << " plane " << kk;
      }
    }
  }
}

// evaluate() and evaluate_with_gradient() report bit-identical terms on
// every tier (the F4 fusion rides different passes in the two paths).
TEST_F(SimdDispatchTest, EvaluateAndGradientTermsAgree) {
  const Netlist netlist = build_mapped("ksa8");
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);
  const CostModel model(problem, CostWeights{});

  for (const Tier tier : available_tiers()) {
    simd::force_tier_for_testing(tier);
    Rng rng(5);
    const Matrix w = random_soft_assignment(problem.num_gates,
                                            problem.num_planes, rng);
    CostModel::Workspace ws;
    const CostTerms eval = model.evaluate(w, ws);
    Matrix grad;
    const CostTerms with_grad = model.evaluate_with_gradient(w, grad, ws);
    EXPECT_EQ(eval.f1, with_grad.f1) << simd::tier_name(tier);
    EXPECT_EQ(eval.f2, with_grad.f2);
    EXPECT_EQ(eval.f3, with_grad.f3);
    EXPECT_EQ(eval.f4, with_grad.f4);
  }
}

}  // namespace
}  // namespace sfqpart
