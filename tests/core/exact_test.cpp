// The `exact` branch-and-bound reference: proves the optimum on small
// instances (brute-force cross-check), rejects big ones with a clear
// Status, and anchors the optimality-gap measurement of every heuristic
// engine.
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/engine.h"
#include "gen/suite.h"
#include "netlist/netlist.h"

namespace sfqpart {
namespace {

// 8 JTLs in a chain plus a merge fed from two chain taps: small enough
// for 3^9 enumeration, structured enough that the optimum is not trivial.
Netlist tiny_netlist() {
  Netlist netlist;
  std::vector<GateId> gates;
  for (int i = 0; i < 8; ++i) {
    gates.push_back(
        netlist.add_gate_of_kind("g" + std::to_string(i), CellKind::kJtl));
  }
  for (int i = 0; i + 1 < 8; ++i) {
    netlist.connect(gates[static_cast<std::size_t>(i)], 0,
                    gates[static_cast<std::size_t>(i + 1)], 0);
  }
  const GateId merge = netlist.add_gate_of_kind("m0", CellKind::kMerge);
  netlist.connect(gates[2], 0, merge, 0);
  netlist.connect(gates[7], 0, merge, 1);
  return netlist;
}

// Minimum weighted total over every K^G labeling (optionally restricted
// to labelings honoring `fixed`, compact-indexed), scored by the shared
// CostModel — NOT by the certifier, so the cross-check is independent of
// the engine's own oracle.
double brute_force_optimum(const Netlist& netlist, int num_planes,
                           const std::vector<int>* fixed = nullptr) {
  const PartitionProblem problem =
      PartitionProblem::from_netlist(netlist, num_planes);
  const CostModel model(problem, CostWeights{});
  std::vector<int> labels(static_cast<std::size_t>(problem.num_gates), 0);
  double best = std::numeric_limits<double>::infinity();
  while (true) {
    bool feasible = true;
    if (fixed != nullptr) {
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if ((*fixed)[i] >= 0 && labels[i] != (*fixed)[i]) {
          feasible = false;
          break;
        }
      }
    }
    if (feasible) {
      const double total =
          model.evaluate_discrete(labels).total(CostWeights{});
      if (total < best) best = total;
    }
    // Odometer increment over the K^G space.
    std::size_t digit = 0;
    while (digit < labels.size() && ++labels[digit] == num_planes) {
      labels[digit] = 0;
      ++digit;
    }
    if (digit == labels.size()) break;
  }
  return best;
}

StatusOr<EngineRun> run_exact(const Netlist& netlist, int num_planes,
                              EngineContext context = {}) {
  const auto engine = EngineRegistry::create("exact");
  EXPECT_TRUE(engine.is_ok());
  context.num_planes = num_planes;
  context.certify = true;
  return (*engine)->run(netlist, context);
}

TEST(ExactEngine, MatchesBruteForceEnumeration) {
  const Netlist netlist = tiny_netlist();
  const auto run = run_exact(netlist, 3);
  ASSERT_TRUE(run.is_ok()) << run.status().message();
  EXPECT_NEAR(run->discrete_total, brute_force_optimum(netlist, 3), 1e-12);
  EXPECT_EQ(run->counter("proved_optimal"), 1.0);
  EXPECT_GT(run->counter("nodes_explored"), 0.0);
}

TEST(ExactEngine, MatchesBruteForceAtTwoPlanes) {
  const Netlist netlist = tiny_netlist();
  const auto run = run_exact(netlist, 2);
  ASSERT_TRUE(run.is_ok()) << run.status().message();
  EXPECT_NEAR(run->discrete_total, brute_force_optimum(netlist, 2), 1e-12);
}

TEST(ExactEngine, DeterministicAcrossRuns) {
  const Netlist netlist = tiny_netlist();
  const auto a = run_exact(netlist, 3);
  const auto b = run_exact(netlist, 3);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a->partition.plane_of, b->partition.plane_of);
  EXPECT_EQ(a->discrete_total, b->discrete_total);
}

TEST(ExactEngine, RejectsInstancesAboveMaxGates) {
  const Netlist netlist = build_mapped("ksa4");
  const auto run = run_exact(netlist, 3);
  ASSERT_FALSE(run.is_ok());
  EXPECT_TRUE(run.status().is_invalid_argument());
  EXPECT_NE(run.status().message().find("max_gates"), std::string::npos)
      << run.status().message();

  // The cap is a knob, not a constant: lowering it rejects the tiny
  // instance too.
  EngineContext tight;
  tight.max_gates = 4;
  const auto tiny = run_exact(tiny_netlist(), 3, tight);
  ASSERT_FALSE(tiny.is_ok());
  EXPECT_TRUE(tiny.status().is_invalid_argument());
}

TEST(ExactEngine, HonorsPinsAndStaysOptimalAmongFeasibleLabelings) {
  const Netlist netlist = tiny_netlist();
  EngineContext context;
  context.constraints.pins = {{"g0", 2}, {"g5", 0}};
  const auto run = run_exact(netlist, 3, context);
  ASSERT_TRUE(run.is_ok()) << run.status().message();
  EXPECT_EQ(run->partition.plane(netlist.find_gate("g0")), 2);
  EXPECT_EQ(run->partition.plane(netlist.find_gate("g5")), 0);

  const auto compiled =
      compile_constraints(netlist, context.constraints, 3);
  ASSERT_TRUE(compiled.is_ok());
  EXPECT_NEAR(run->discrete_total,
              brute_force_optimum(netlist, 3, &compiled->fixed_compact),
              1e-12);
}

// The reason the engine exists: a measurable optimality gap for every
// heuristic, with gap >= 0 always and gap == 0 for at least one
// heuristic on a small instance.
TEST(ExactEngine, AnchorsOptimalityGapOfEveryHeuristic) {
  const Netlist netlist = tiny_netlist();
  const auto exact = run_exact(netlist, 3);
  ASSERT_TRUE(exact.is_ok()) << exact.status().message();
  const double optimum = exact->discrete_total;

  double min_gap = std::numeric_limits<double>::infinity();
  // eco refuses to run cold; an all-unassigned warm start makes it a full
  // (greedy + bucket) solve the optimum can anchor like any heuristic.
  InitialPartition warm;
  warm.plane_of.assign(static_cast<std::size_t>(netlist.num_gates()),
                       kUnassignedPlane);
  for (const std::string& name : EngineRegistry::names()) {
    if (name == "exact") continue;
    const auto engine = EngineRegistry::create(name);
    ASSERT_TRUE(engine.is_ok());
    EngineContext context;
    context.num_planes = 3;
    context.restarts = 1;
    if (name == "eco") context.warm_start = &warm;
    const auto run = (*engine)->run(netlist, context);
    ASSERT_TRUE(run.is_ok()) << name << ": " << run.status().message();
    const double gap = run->discrete_total - optimum;
    EXPECT_GE(gap, -1e-9) << name << " beat the proved optimum";
    if (gap < min_gap) min_gap = gap;
  }
  EXPECT_LE(min_gap, 1e-9)
      << "no heuristic found the optimum on a 9-gate instance";
}

}  // namespace
}  // namespace sfqpart
