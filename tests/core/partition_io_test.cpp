#include "core/partition_io.h"

#include <gtest/gtest.h>

#include "core/solver.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"

namespace sfqpart {
namespace {

TEST(PartitionIo, SaveLoadRoundTrip) {
  const Netlist netlist = build_mapped("ksa4");
  SolverConfig options;
  options.num_planes = 4;
  const Partition original = Solver(options).run(netlist).value().partition;

  const std::string path = ::testing::TempDir() + "/sfqpart_partition.csv";
  ASSERT_TRUE(save_partition_csv(path, netlist, original).is_ok());
  auto loaded = load_partition_csv(path, netlist);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().message();
  EXPECT_EQ(loaded->plane_of, original.plane_of);
  EXPECT_EQ(loaded->num_planes, original.num_planes);

  const PartitionMetrics a = compute_metrics(netlist, original);
  const PartitionMetrics b = compute_metrics(netlist, *loaded);
  EXPECT_EQ(a.distance_histogram, b.distance_histogram);
}

TEST(PartitionIo, RejectsUnknownGate) {
  const Netlist netlist = build_mapped("ksa4");
  const auto result = parse_partition_csv(
      "gate,cell,plane\nnot_a_gate,DFFT,0\n", netlist);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("unknown gate"), std::string::npos);
}

TEST(PartitionIo, RejectsCellMismatch) {
  Netlist netlist(&default_sfq_library(), "n");
  const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId d = netlist.add_gate_of_kind("d0", CellKind::kDff);
  netlist.connect(in, 0, d, 0);
  const auto result = parse_partition_csv("gate,cell,plane\nd0,AND2T,0\n", netlist);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("DFFT"), std::string::npos);
}

TEST(PartitionIo, RejectsIncompleteAssignment) {
  Netlist netlist(&default_sfq_library(), "n");
  netlist.add_gate_of_kind("d0", CellKind::kDff);
  netlist.add_gate_of_kind("d1", CellKind::kDff);
  const auto result = parse_partition_csv("gate,cell,plane\nd0,DFFT,0\n", netlist);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("d1"), std::string::npos);
}

TEST(PartitionIo, RejectsDuplicateAndBadPlanes) {
  Netlist netlist(&default_sfq_library(), "n");
  netlist.add_gate_of_kind("d0", CellKind::kDff);
  EXPECT_FALSE(parse_partition_csv(
                   "gate,cell,plane\nd0,DFFT,0\nd0,DFFT,1\n", netlist)
                   .is_ok());
  EXPECT_FALSE(parse_partition_csv("gate,cell,plane\nd0,DFFT,-1\n", netlist).is_ok());
  EXPECT_FALSE(parse_partition_csv("gate,cell,plane\nd0,DFFT,abc\n", netlist).is_ok());
  EXPECT_FALSE(parse_partition_csv("wrong,header,here\nd0,DFFT,0\n", netlist).is_ok());
}

TEST(PartitionIo, RejectsWrongColumnCount) {
  Netlist netlist(&default_sfq_library(), "n");
  netlist.add_gate_of_kind("d0", CellKind::kDff);
  // A row with too few fields fails in the CSV layer, not with a crash on
  // row[2]; too many fields likewise.
  const auto missing = parse_partition_csv("gate,cell,plane\nd0,DFFT\n", netlist);
  ASSERT_FALSE(missing.is_ok());
  EXPECT_NE(missing.status().message().find("fields"), std::string::npos);
  EXPECT_FALSE(
      parse_partition_csv("gate,cell,plane\nd0,DFFT,0,extra\n", netlist).is_ok());
}

TEST(PartitionIo, RejectsOutOfRangePlane) {
  Netlist netlist(&default_sfq_library(), "n");
  netlist.add_gate_of_kind("d0", CellKind::kDff);
  // 5000000000 parses as a long long but would wrap negative when narrowed
  // to the Partition's int planes.
  const auto result =
      parse_partition_csv("gate,cell,plane\nd0,DFFT,5000000000\n", netlist);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("bad plane"), std::string::npos);
}

TEST(PartitionIo, NumPlanesFromMaxLabel) {
  Netlist netlist(&default_sfq_library(), "n");
  netlist.add_gate_of_kind("d0", CellKind::kDff);
  netlist.add_gate_of_kind("d1", CellKind::kDff);
  auto result = parse_partition_csv("gate,cell,plane\nd0,DFFT,0\nd1,DFFT,6\n", netlist);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->num_planes, 7);
}

}  // namespace
}  // namespace sfqpart
