#include "pulse/pulse_sim.h"

#include <gtest/gtest.h>

#include "gen/ksa.h"
#include "gen/multiplier.h"
#include "sfq/mapper.h"
#include "util/rng.h"

namespace sfqpart {
namespace {

// a -> <cell> -> y (optionally with a second input b).
struct TinyCircuit {
  Netlist netlist{&default_sfq_library(), "tiny"};

  explicit TinyCircuit(CellKind kind, bool two_inputs = false) {
    const GateId a = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
    const GateId g = netlist.add_gate_of_kind("g", kind);
    netlist.connect(a, 0, g, 0);
    if (two_inputs) {
      const GateId b = netlist.add_gate_of_kind("pin:b", CellKind::kInput);
      netlist.connect(b, 0, g, 1);
    }
    netlist.connect(g, 0, netlist.add_gate_of_kind("pin:y", CellKind::kOutput), 0);
  }
};

std::vector<bool> bits(std::initializer_list<int> values) {
  std::vector<bool> out;
  for (const int v : values) out.push_back(v != 0);
  return out;
}

TEST(PulseSim, DffDelaysByOneCycle) {
  TinyCircuit c(CellKind::kDff);
  PulseSimulator sim(c.netlist);
  EXPECT_EQ(sim.latency(), 1);
  const PulseTrains out = sim.run({{"a", bits({1, 0, 1, 1, 0})}}, 6);
  EXPECT_EQ(out.at("y"), bits({0, 1, 0, 1, 1, 0}));
}

TEST(PulseSim, AndNeedsBothPulsesInTheSameCycle) {
  TinyCircuit c(CellKind::kAnd2, true);
  PulseSimulator sim(c.netlist);
  const PulseTrains out = sim.run(
      {{"a", bits({1, 1, 0, 0})}, {"b", bits({1, 0, 1, 0})}}, 5);
  EXPECT_EQ(out.at("y"), bits({0, 1, 0, 0, 0}));
}

TEST(PulseSim, XorNeedsExactlyOnePulse) {
  TinyCircuit c(CellKind::kXor2, true);
  PulseSimulator sim(c.netlist);
  const PulseTrains out = sim.run(
      {{"a", bits({1, 1, 0, 0})}, {"b", bits({1, 0, 1, 0})}}, 5);
  EXPECT_EQ(out.at("y"), bits({0, 0, 1, 1, 0}));
}

TEST(PulseSim, ClockedInverterPulsesOnAbsence) {
  TinyCircuit c(CellKind::kNot);
  PulseSimulator sim(c.netlist);
  const PulseTrains out = sim.run({{"a", bits({1, 0, 1})}}, 4);
  // Emits in cycle t+1 when no pulse arrived in cycle t; cycle 0 emits
  // nothing (nothing latched yet).
  EXPECT_EQ(out.at("y"), bits({0, 0, 1, 0}));
}

TEST(PulseSim, MergerForwardsEitherInput) {
  TinyCircuit c(CellKind::kMerge, true);
  PulseSimulator sim(c.netlist);
  EXPECT_EQ(sim.latency(), 0);  // merger is unclocked
  const PulseTrains out = sim.run(
      {{"a", bits({1, 0, 0})}, {"b", bits({0, 1, 0})}}, 3);
  EXPECT_EQ(out.at("y"), bits({1, 1, 0}));
}

TEST(PulseSim, TffDividesPulseRateByTwo) {
  TinyCircuit c(CellKind::kTff);
  PulseSimulator sim(c.netlist);
  const PulseTrains out = sim.run({{"a", bits({1, 1, 1, 1, 1})}}, 5);
  EXPECT_EQ(out.at("y"), bits({0, 1, 0, 1, 0}));
}

TEST(PulseSim, SplitterFansOutWithinCycle) {
  Netlist netlist(&default_sfq_library(), "split");
  const GateId a = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId s = netlist.add_gate_of_kind("s", CellKind::kSplit);
  netlist.connect(a, 0, s, 0);
  netlist.connect(s, 0, netlist.add_gate_of_kind("pin:y0", CellKind::kOutput), 0);
  netlist.connect(s, 1, netlist.add_gate_of_kind("pin:y1", CellKind::kOutput), 0);
  PulseSimulator sim(netlist);
  const PulseTrains out = sim.run({{"a", bits({1, 0, 1})}}, 3);
  EXPECT_EQ(out.at("y0"), bits({1, 0, 1}));
  EXPECT_EQ(out.at("y1"), bits({1, 0, 1}));
}

TEST(PulseSim, LatencyEqualsPipelineDepth) {
  const Netlist mapped = map_to_sfq(build_ksa(8));
  PulseSimulator sim(mapped);
  EXPECT_GT(sim.latency(), 3);  // g/p + prefix levels + sum stage
  EXPECT_LT(sim.latency(), 20);
}

TEST(PulseSim, WavePipelinedAdditionEveryCycle) {
  // The headline property of full path balancing: a new word pair can be
  // streamed every clock cycle and the pipeline produces one sum per cycle
  // after `latency()` cycles.
  const Netlist mapped = map_to_sfq(build_ksa(8));
  PulseSimulator sim(mapped);
  Rng rng(42);
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(rng.uniform_index(256));
    b.push_back(rng.uniform_index(256));
  }
  const std::vector<std::uint64_t> sums =
      sim.stream_words("a", a, "b", b, 8, "s", 8);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(sums[static_cast<std::size_t>(i)],
              (a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(i)]) & 0xff)
        << "word " << i;
  }
}

TEST(PulseSim, WavePipelinedMultiplication) {
  const Netlist mapped = map_to_sfq(build_multiplier(4));
  PulseSimulator sim(mapped);
  Rng rng(7);
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(rng.uniform_index(16));
    b.push_back(rng.uniform_index(16));
  }
  const std::vector<std::uint64_t> products =
      sim.stream_words("a", a, "b", b, 4, "p", 8);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(products[static_cast<std::size_t>(i)],
              a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)])
        << "word " << i;
  }
}

TEST(PulseSim, UnbalancedPipelineCorruptsStreamedWords) {
  // Disable path balancing: fan-ins arrive in different cycles, so
  // streaming at full rate must corrupt results -- this is exactly the
  // failure mode balancing exists to prevent.
  SfqMapperOptions options;
  options.balance_paths = false;
  const Netlist unbalanced = map_to_sfq(build_ksa(8), options);
  PulseSimulator sim(unbalanced);
  Rng rng(3);
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(rng.uniform_index(256));
    b.push_back(rng.uniform_index(256));
  }
  const std::vector<std::uint64_t> sums =
      sim.stream_words("a", a, "b", b, 8, "s", 8);
  int mismatches = 0;
  for (int i = 0; i < 20; ++i) {
    if (sums[static_cast<std::size_t>(i)] !=
        ((a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(i)]) & 0xff)) {
      ++mismatches;
    }
  }
  EXPECT_GT(mismatches, 0);
}

TEST(PulseSim, MissingInputsTreatedAsSilent) {
  TinyCircuit c(CellKind::kDff);
  PulseSimulator sim(c.netlist);
  const PulseTrains out = sim.run({}, 3);
  EXPECT_EQ(out.at("y"), bits({0, 0, 0}));
}

}  // namespace
}  // namespace sfqpart
