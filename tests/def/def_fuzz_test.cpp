// Robustness: the LEF/DEF parsers must return Status errors -- never
// crash, hang, or corrupt memory -- on arbitrarily mangled input. These
// tests mutate valid files token-wise and byte-wise with a seeded RNG.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "def/def_parser.h"
#include "def/def_writer.h"
#include "def/lef_parser.h"
#include "gen/suite.h"
#include "util/rng.h"
#include "util/strings.h"
#include "verilog/verilog_parser.h"
#include "verilog/verilog_writer.h"

namespace sfqpart::def {
namespace {

std::string mutate(const std::string& text, Rng& rng) {
  std::vector<std::string> tokens = split(text, " \n\t");
  if (tokens.empty()) return text;
  switch (rng.uniform_index(5)) {
    case 0:  // delete a token
      tokens.erase(tokens.begin() +
                   static_cast<std::ptrdiff_t>(rng.uniform_index(tokens.size())));
      break;
    case 1:  // duplicate a token
      tokens.insert(tokens.begin() +
                        static_cast<std::ptrdiff_t>(rng.uniform_index(tokens.size())),
                    tokens[rng.uniform_index(tokens.size())]);
      break;
    case 2:  // replace with garbage
      tokens[rng.uniform_index(tokens.size())] = "@#$%";
      break;
    case 3: {  // swap two tokens
      const std::size_t i = rng.uniform_index(tokens.size());
      const std::size_t j = rng.uniform_index(tokens.size());
      std::swap(tokens[i], tokens[j]);
      break;
    }
    case 4:  // truncate
      tokens.resize(rng.uniform_index(tokens.size()) + 1);
      break;
  }
  std::string out;
  for (const std::string& token : tokens) {
    out += token;
    out += rng.bernoulli(0.1) ? '\n' : ' ';
  }
  return out;
}

class DefFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DefFuzz, MutatedDefNeverCrashes) {
  const std::string base = write_def(build_mapped("ksa4"));
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 60; ++trial) {
    std::string text = base;
    const int rounds = 1 + static_cast<int>(rng.uniform_index(4));
    for (int round = 0; round < rounds; ++round) text = mutate(text, rng);
    const auto design = parse_def(text);  // ok or error, both fine
    if (design.is_ok()) {
      // A parseable mutant must still convert or fail cleanly.
      (void)def_to_netlist(*design, sfqpart::default_sfq_library());
    }
  }
}

TEST_P(DefFuzz, MutatedLefNeverCrashes) {
  const std::string base = write_lef(sfqpart::default_sfq_library());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  for (int trial = 0; trial < 60; ++trial) {
    std::string text = base;
    const int rounds = 1 + static_cast<int>(rng.uniform_index(4));
    for (int round = 0; round < rounds; ++round) text = mutate(text, rng);
    (void)parse_lef(text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DefFuzz, ::testing::Range(1, 5));

TEST_P(DefFuzz, MutatedVerilogNeverCrashes) {
  const std::string base = write_verilog(build_mapped("ksa4"));
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  for (int trial = 0; trial < 60; ++trial) {
    std::string text = base;
    const int rounds = 1 + static_cast<int>(rng.uniform_index(4));
    for (int round = 0; round < rounds; ++round) text = mutate(text, rng);
    const auto module = parse_verilog(text);
    if (module.is_ok()) {
      (void)verilog_to_netlist(*module, sfqpart::default_sfq_library());
    }
  }
}

TEST(DefFuzz, RandomBytesNeverCrash) {
  Rng rng(123);
  for (int trial = 0; trial < 40; ++trial) {
    std::string text;
    const std::size_t length = rng.uniform_index(400);
    for (std::size_t i = 0; i < length; ++i) {
      text += static_cast<char>(rng.uniform_index(96) + 32);
    }
    (void)parse_def(text);
    (void)parse_lef(text);
  }
}

TEST(DefFuzz, EmptyAndWhitespaceInputs) {
  EXPECT_FALSE(parse_def("").is_ok());
  EXPECT_FALSE(parse_def("   \n\t  ").is_ok());
  EXPECT_TRUE(parse_lef("").is_ok());  // an empty library is legal LEF
}

}  // namespace
}  // namespace sfqpart::def
