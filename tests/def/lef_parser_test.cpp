#include "def/lef_parser.h"

#include <gtest/gtest.h>

#include "netlist/cell_library.h"

namespace sfqpart::def {
namespace {

constexpr const char* kSampleLef = R"(
VERSION 5.8 ;
NAMESCASESENSITIVE ON ;
UNITS
  DATABASE MICRONS 1000 ;
END UNITS

LAYER metal1
  TYPE ROUTING ;
END metal1

MACRO AND2T
  CLASS CORE ;
  ORIGIN 0 0 ;
  SIZE 110.000 BY 60.000 ;
  PIN A
    DIRECTION INPUT ;
    USE SIGNAL ;
  END A
  PIN B
    DIRECTION INPUT ;
  END B
  PIN CLK
    DIRECTION INPUT ;
    USE CLOCK ;
  END CLK
  PIN Q
    DIRECTION OUTPUT ;
    USE SIGNAL ;
  END Q
END AND2T

MACRO SPLITT
  CLASS CORE ;
  SIZE 45 BY 60 ;
  PIN A
    DIRECTION INPUT ;
  END A
  PIN Q0
    DIRECTION OUTPUT ;
  END Q0
  PIN Q1
    DIRECTION OUTPUT ;
  END Q1
END SPLITT

END LIBRARY
)";

TEST(LefParser, ParsesMacros) {
  auto lib = parse_lef(kSampleLef);
  ASSERT_TRUE(lib.is_ok());
  EXPECT_EQ(lib->macros.size(), 2u);
  const LefMacro* and2 = lib->find("AND2T");
  ASSERT_NE(and2, nullptr);
  EXPECT_EQ(and2->macro_class, "CORE");
  EXPECT_DOUBLE_EQ(and2->width_um, 110.0);
  EXPECT_DOUBLE_EQ(and2->height_um, 60.0);
  EXPECT_DOUBLE_EQ(and2->area_um2(), 6600.0);
  ASSERT_EQ(and2->pins.size(), 4u);
}

TEST(LefParser, PinDirectionsAndUse) {
  auto lib = parse_lef(kSampleLef);
  ASSERT_TRUE(lib.is_ok());
  const LefMacro* and2 = lib->find("AND2T");
  ASSERT_NE(and2, nullptr);
  EXPECT_EQ(and2->find_pin("A")->direction, PinDirection::kInput);
  EXPECT_EQ(and2->find_pin("Q")->direction, PinDirection::kOutput);
  EXPECT_EQ(and2->find_pin("CLK")->use, "CLOCK");
  EXPECT_EQ(and2->find_pin("MISSING"), nullptr);
}

TEST(LefParser, SkipsTechnologySections) {
  auto lib = parse_lef(kSampleLef);
  ASSERT_TRUE(lib.is_ok());
  EXPECT_EQ(lib->find("metal1"), nullptr);
}

TEST(LefParser, RejectsMismatchedEnd) {
  const char* bad = "MACRO FOO\n SIZE 10 BY 10 ;\nEND BAR\n";
  EXPECT_FALSE(parse_lef(bad).is_ok());
}

TEST(LefParser, RejectsTruncatedMacro) {
  EXPECT_FALSE(parse_lef("MACRO FOO\n SIZE 1 BY 1 ;\n").is_ok());
}

TEST(PinNames, Convention) {
  EXPECT_EQ(input_pin_name(0), "A");
  EXPECT_EQ(input_pin_name(1), "B");
  EXPECT_EQ(input_pin_name(25), "Z");
  EXPECT_EQ(input_pin_name(26), "A1");
  EXPECT_EQ(output_pin_name(0, 1), "Q");
  EXPECT_EQ(output_pin_name(0, 2), "Q0");
  EXPECT_EQ(output_pin_name(1, 2), "Q1");
}

TEST(WriteLef, RoundTripsDefaultLibrary) {
  const std::string text = write_lef(default_sfq_library());
  auto lib = parse_lef(text);
  ASSERT_TRUE(lib.is_ok());
  EXPECT_EQ(static_cast<int>(lib->macros.size()),
            default_sfq_library().num_cells());
  for (const Cell& cell : default_sfq_library().cells()) {
    const LefMacro* macro = lib->find(cell.name);
    ASSERT_NE(macro, nullptr) << cell.name;
    // Footprint area matches the library's cell area.
    EXPECT_NEAR(macro->area_um2(), cell.area_um2, cell.area_um2 * 0.01 + 1.0)
        << cell.name;
    // One LEF pin per data pin, plus CLK on clocked cells.
    const int expected_pins =
        cell.num_inputs + cell.num_outputs + (cell.is_clocked() ? 1 : 0);
    EXPECT_EQ(static_cast<int>(macro->pins.size()), expected_pins) << cell.name;
  }
}

}  // namespace
}  // namespace sfqpart::def
