#include "def/def_parser.h"

#include <gtest/gtest.h>

namespace sfqpart::def {
namespace {

constexpr const char* kSampleDef = R"(
VERSION 5.8 ;
DIVIDERCHAR "/" ;
DESIGN demo ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 300000 300000 ) ;

COMPONENTS 3 ;
  - g1 DFFT + PLACED ( 1000 2000 ) N ;
  - g2 SPLITT + PLACED ( 45000 2000 ) FS ;
  - g3 DFFT + UNPLACED ;
END COMPONENTS

PINS 2 ;
  - a + NET na + DIRECTION INPUT + USE SIGNAL ;
  - y + NET ny + DIRECTION OUTPUT ;
END PINS

NETS 4 ;
  - na ( PIN a ) ( g1 A ) + USE SIGNAL ;
  - n1 ( g1 Q ) ( g2 A ) ;
  - n2 ( g2 Q0 ) ( g3 A ) ;
  - ny ( g3 Q ) ( PIN y ) ;
END NETS

END DESIGN
)";

TEST(DefParser, ParsesHeaderAndSections) {
  auto design = parse_def(kSampleDef);
  ASSERT_TRUE(design.is_ok());
  EXPECT_EQ(design->name, "demo");
  EXPECT_EQ(design->dbu_per_micron, 1000);
  EXPECT_EQ(design->die_hi.x, 300000);
  EXPECT_DOUBLE_EQ(design->die_area_mm2(), 0.09);
  EXPECT_EQ(design->components.size(), 3u);
  EXPECT_EQ(design->pins.size(), 2u);
  EXPECT_EQ(design->nets.size(), 4u);
}

TEST(DefParser, ComponentPlacement) {
  auto design = parse_def(kSampleDef);
  ASSERT_TRUE(design.is_ok());
  const DefComponent* g1 = design->find_component("g1");
  ASSERT_NE(g1, nullptr);
  EXPECT_EQ(g1->macro, "DFFT");
  EXPECT_TRUE(g1->placed);
  EXPECT_EQ(g1->location, (DefPoint{1000, 2000}));
  EXPECT_EQ(g1->orient, "N");
  const DefComponent* g2 = design->find_component("g2");
  ASSERT_NE(g2, nullptr);
  EXPECT_EQ(g2->orient, "FS");
  const DefComponent* g3 = design->find_component("g3");
  ASSERT_NE(g3, nullptr);
  EXPECT_FALSE(g3->placed);
}

TEST(DefParser, PinsAndNets) {
  auto design = parse_def(kSampleDef);
  ASSERT_TRUE(design.is_ok());
  EXPECT_EQ(design->pins[0].direction, PinDirection::kInput);
  EXPECT_EQ(design->pins[0].net, "na");
  EXPECT_EQ(design->pins[1].direction, PinDirection::kOutput);
  const DefNet& na = design->nets[0];
  ASSERT_EQ(na.connections.size(), 2u);
  EXPECT_TRUE(na.connections[0].is_top_pin());
  EXPECT_EQ(na.connections[0].pin, "a");
  EXPECT_EQ(na.connections[1].component, "g1");
  EXPECT_EQ(na.connections[1].pin, "A");
}

TEST(DefParser, ErrorsAreStatusesNotCrashes) {
  EXPECT_FALSE(parse_def("VERSION 5.8 ;").is_ok());          // no DESIGN
  EXPECT_FALSE(parse_def("DESIGN x ;\nCOMPONENTS 1 ;\n- g1 FOO ;\n").is_ok());
  EXPECT_FALSE(parse_def("DESIGN x ;\nUNITS DISTANCE MICRONS 0 ;\nEND DESIGN").is_ok());
}

TEST(DefToNetlist, BuildsConnectivity) {
  auto design = parse_def(kSampleDef);
  ASSERT_TRUE(design.is_ok());
  auto netlist = def_to_netlist(*design, sfqpart::default_sfq_library());
  ASSERT_TRUE(netlist.is_ok()) << netlist.status().message();
  EXPECT_EQ(netlist->num_gates(), 5);  // 3 components + 2 pin gates
  EXPECT_EQ(netlist->num_partitionable_gates(), 3);
  const GateId g1 = netlist->find_gate("g1");
  const GateId g2 = netlist->find_gate("g2");
  ASSERT_NE(g1, kInvalidGate);
  ASSERT_NE(g2, kInvalidGate);
  const NetId n1 = netlist->output_net(g1, 0);
  ASSERT_NE(n1, kInvalidNet);
  EXPECT_EQ(netlist->net(n1).sinks[0].gate, g2);
  EXPECT_EQ(netlist->find_gate("pin:a"), 3);
}

TEST(DefToNetlist, ClockPinsWireAsClocks) {
  const char* text = R"(
DESIGN clk ;
COMPONENTS 2 ;
  - src DCSFQ ;
  - d DFFT ;
END COMPONENTS
PINS 0 ;
END PINS
NETS 2 ;
  - nc ( src Q ) ( d CLK ) ;
END NETS
END DESIGN
)";
  auto design = parse_def(text);
  ASSERT_TRUE(design.is_ok());
  auto netlist = def_to_netlist(*design, sfqpart::default_sfq_library());
  ASSERT_TRUE(netlist.is_ok()) << netlist.status().message();
  const GateId d = netlist->find_gate("d");
  EXPECT_NE(netlist->clock_net(d), kInvalidNet);
  EXPECT_EQ(netlist->input_net(d, 0), kInvalidNet);
}

TEST(DefToNetlist, RejectsBadReferences) {
  {
    auto design = parse_def(
        "DESIGN x ;\nCOMPONENTS 1 ;\n- g1 NOSUCHMACRO ;\nEND COMPONENTS\nEND DESIGN");
    ASSERT_TRUE(design.is_ok());
    EXPECT_FALSE(def_to_netlist(*design, sfqpart::default_sfq_library()).is_ok());
  }
  {
    auto design = parse_def(
        "DESIGN x ;\nCOMPONENTS 1 ;\n- g1 DFFT ;\nEND COMPONENTS\n"
        "NETS 1 ;\n- n ( g1 NOPIN ) ;\nEND NETS\nEND DESIGN");
    ASSERT_TRUE(design.is_ok());
    EXPECT_FALSE(def_to_netlist(*design, sfqpart::default_sfq_library()).is_ok());
  }
  {
    // Two drivers on one net.
    auto design = parse_def(
        "DESIGN x ;\nCOMPONENTS 2 ;\n- g1 DFFT ;\n- g2 DFFT ;\nEND COMPONENTS\n"
        "NETS 1 ;\n- n ( g1 Q ) ( g2 Q ) ;\nEND NETS\nEND DESIGN");
    ASSERT_TRUE(design.is_ok());
    EXPECT_FALSE(def_to_netlist(*design, sfqpart::default_sfq_library()).is_ok());
  }
}

}  // namespace
}  // namespace sfqpart::def
