#include "def/def_writer.h"

#include <gtest/gtest.h>

#include "def/def_parser.h"
#include "gen/suite.h"

namespace sfqpart::def {
namespace {

TEST(DefWriter, UtilizationControlsDieSize) {
  const Netlist netlist = build_mapped("ksa8");
  DefWriterOptions dense;
  dense.utilization = 0.95;
  DefWriterOptions sparse;
  sparse.utilization = 0.40;
  auto dense_design = parse_def(write_def(netlist, dense));
  auto sparse_design = parse_def(write_def(netlist, sparse));
  ASSERT_TRUE(dense_design.is_ok());
  ASSERT_TRUE(sparse_design.is_ok());
  EXPECT_GT(sparse_design->die_area_mm2(), dense_design->die_area_mm2());
  // Both must still cover the cells.
  EXPECT_GT(dense_design->die_area_mm2(), netlist.total_area_um2() * 1e-6);
}

TEST(DefWriter, DbuScalesCoordinates) {
  const Netlist netlist = build_mapped("ksa4");
  DefWriterOptions coarse;
  coarse.dbu_per_micron = 100;
  DefWriterOptions fine;
  fine.dbu_per_micron = 2000;
  auto coarse_design = parse_def(write_def(netlist, coarse));
  auto fine_design = parse_def(write_def(netlist, fine));
  ASSERT_TRUE(coarse_design.is_ok());
  ASSERT_TRUE(fine_design.is_ok());
  EXPECT_EQ(coarse_design->dbu_per_micron, 100);
  EXPECT_EQ(fine_design->dbu_per_micron, 2000);
  // Physical die area is invariant under the database unit choice.
  EXPECT_NEAR(coarse_design->die_area_mm2(), fine_design->die_area_mm2(),
              0.05 * fine_design->die_area_mm2() + 1e-6);
}

TEST(DefWriter, RowHeightQuantizesPlacement) {
  const Netlist netlist = build_mapped("ksa4");
  DefWriterOptions options;
  options.row_height_um = 60.0;
  auto design = parse_def(write_def(netlist, options));
  ASSERT_TRUE(design.is_ok());
  const long long row_dbu =
      static_cast<long long>(options.row_height_um * options.dbu_per_micron);
  for (const DefComponent& comp : design->components) {
    EXPECT_EQ(comp.location.y % row_dbu, 0) << comp.name;
  }
}

TEST(DefWriter, EveryComponentAndNetSurvivesParsing) {
  const Netlist netlist = build_mapped("mult4");
  auto design = parse_def(write_def(netlist));
  ASSERT_TRUE(design.is_ok());
  EXPECT_EQ(static_cast<int>(design->components.size()),
            netlist.num_partitionable_gates());
  int connected_nets = 0;
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    if (netlist.net(n).driver.gate != kInvalidGate &&
        !netlist.net(n).sinks.empty()) {
      ++connected_nets;
    }
  }
  EXPECT_EQ(static_cast<int>(design->nets.size()), connected_nets);
}

}  // namespace
}  // namespace sfqpart::def
