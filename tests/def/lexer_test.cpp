#include "def/lexer.h"

#include <gtest/gtest.h>

namespace sfqpart::def {
namespace {

std::vector<std::string> all_tokens(const std::string& text) {
  TokenStream ts = tokenize(text);
  std::vector<std::string> out;
  while (!ts.at_end()) out.push_back(ts.take());
  return out;
}

TEST(Lexer, SplitsWhitespaceAndPunctuation) {
  EXPECT_EQ(all_tokens("- g1 AND2T + PLACED ( 10 20 ) N ;"),
            (std::vector<std::string>{"-", "g1", "AND2T", "+", "PLACED", "(", "10",
                                      "20", ")", "N", ";"}));
}

TEST(Lexer, PunctuationGluedToWords) {
  EXPECT_EQ(all_tokens("(a b);"),
            (std::vector<std::string>{"(", "a", "b", ")", ";"}));
}

TEST(Lexer, NegativeNumbersStayWhole) {
  EXPECT_EQ(all_tokens("( -100 -2.5 )"),
            (std::vector<std::string>{"(", "-100", "-2.5", ")"}));
}

TEST(Lexer, MinusAsItemMarkerSplits) {
  EXPECT_EQ(all_tokens("-inst"), (std::vector<std::string>{"-", "inst"}));
}

TEST(Lexer, CommentsStripped) {
  EXPECT_EQ(all_tokens("a # comment ; ( )\nb"),
            (std::vector<std::string>{"a", "b"}));
}

TEST(Lexer, TracksLineNumbers) {
  TokenStream ts = tokenize("a\nb\n\nc");
  EXPECT_EQ(ts.line(), 1);
  ts.take();
  EXPECT_EQ(ts.line(), 2);
  ts.take();
  EXPECT_EQ(ts.line(), 4);
}

TEST(TokenStream, AcceptAndExpect) {
  TokenStream ts = tokenize("FOO ; BAR");
  EXPECT_FALSE(ts.accept("BAR"));
  EXPECT_TRUE(ts.accept("FOO"));
  EXPECT_TRUE(ts.expect(";").is_ok());
  const Status bad = ts.expect("BAZ");
  EXPECT_FALSE(bad.is_ok());
  EXPECT_NE(bad.message().find("expected 'BAZ'"), std::string::npos);
}

TEST(TokenStream, NumericTakes) {
  TokenStream ts = tokenize("42 2.5 oops");
  auto integer = ts.take_int();
  ASSERT_TRUE(integer.is_ok());
  EXPECT_EQ(*integer, 42);
  auto real = ts.take_double();
  ASSERT_TRUE(real.is_ok());
  EXPECT_DOUBLE_EQ(*real, 2.5);
  EXPECT_FALSE(ts.take_int().is_ok());
}

TEST(TokenStream, SkipStatement) {
  TokenStream ts = tokenize("VERSION 5.8 ; DESIGN top ;");
  ts.take();  // VERSION
  ts.skip_statement();
  EXPECT_EQ(ts.peek(), "DESIGN");
}

TEST(TokenStream, ErrorCarriesLine) {
  TokenStream ts = tokenize("a\nb");
  ts.take();
  const Status status = ts.error("boom");
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace sfqpart::def
