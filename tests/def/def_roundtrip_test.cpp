// Write -> parse round trip: the DEF writer and parser must agree exactly
// on connectivity for every benchmark circuit.
#include <gtest/gtest.h>

#include "def/def_parser.h"
#include "def/def_writer.h"
#include "gen/suite.h"
#include "netlist/stats.h"
#include "netlist/validate.h"

namespace sfqpart::def {
namespace {

class DefRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(DefRoundTrip, PreservesStructure) {
  const Netlist original = build_mapped(GetParam());

  const std::string text = write_def(original);
  auto design = parse_def(text);
  ASSERT_TRUE(design.is_ok()) << design.status().message();
  auto parsed = def_to_netlist(*design, original.library());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();

  EXPECT_EQ(parsed->num_gates(), original.num_gates());
  EXPECT_EQ(parsed->num_partitionable_gates(), original.num_partitionable_gates());
  EXPECT_TRUE(validate(*parsed).ok());

  const NetlistStats before = compute_stats(original);
  const NetlistStats after = compute_stats(*parsed);
  EXPECT_EQ(after.num_connections, before.num_connections);
  EXPECT_DOUBLE_EQ(after.total_bias_ma, before.total_bias_ma);
  EXPECT_DOUBLE_EQ(after.total_area_um2, before.total_area_um2);
  EXPECT_EQ(after.logic_depth, before.logic_depth);
  EXPECT_EQ(after.by_kind, before.by_kind);

  // Connectivity is identical gate-by-gate (names survive the round trip).
  for (GateId g = 0; g < original.num_gates(); ++g) {
    const GateId h = parsed->find_gate(original.gate(g).name);
    ASSERT_NE(h, kInvalidGate) << original.gate(g).name;
    EXPECT_EQ(parsed->cell_of(h).name, original.cell_of(g).name);
    EXPECT_EQ(parsed->fanout(h), original.fanout(g)) << original.gate(g).name;
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, DefRoundTrip,
                         ::testing::Values("ksa4", "ksa8", "mult4", "id4",
                                           "c432", "c1355"),
                         [](const auto& info) { return std::string(info.param); });

TEST(DefRoundTrip, DieAreaCoversPlacedCells) {
  const Netlist netlist = build_mapped("ksa4");
  auto design = parse_def(write_def(netlist));
  ASSERT_TRUE(design.is_ok());
  // Die sized for 85% utilization by default.
  EXPECT_GT(design->die_area_mm2(), netlist.total_area_um2() * 1e-6);
  for (const DefComponent& comp : design->components) {
    EXPECT_TRUE(comp.placed) << comp.name;
    EXPECT_GE(comp.location.x, 0);
    EXPECT_LE(comp.location.x, design->die_hi.x);
    EXPECT_LE(comp.location.y, design->die_hi.y);
  }
}

TEST(DefRoundTrip, PinPrefixStripped) {
  const Netlist netlist = build_mapped("ksa4");
  const std::string text = write_def(netlist);
  // The DEF itself uses plain pin names, not the internal "pin:" prefix.
  EXPECT_EQ(text.find("pin:"), std::string::npos);
  auto design = parse_def(text);
  ASSERT_TRUE(design.is_ok());
  bool found = false;
  for (const DefPin& pin : design->pins) found |= pin.name == "a[0]";
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace sfqpart::def
