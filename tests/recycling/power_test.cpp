#include "recycling/power.h"

#include <gtest/gtest.h>

#include "core/solver.h"
#include "gen/suite.h"

namespace sfqpart {
namespace {

struct Fixture {
  Netlist netlist{&default_sfq_library(), "p"};
  Partition partition;
  double dff_bias;

  Fixture() {
    const CellLibrary& lib = default_sfq_library();
    dff_bias = lib.cell(*lib.find_kind(CellKind::kDff)).bias_ma;
    const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
    GateId prev = in;
    for (int i = 0; i < 4; ++i) {
      const GateId d = netlist.add_gate_of_kind("d" + std::to_string(i), CellKind::kDff);
      netlist.connect(prev, 0, d, 0);
      prev = d;
    }
    netlist.connect(prev, 0, netlist.add_gate_of_kind("pin:y", CellKind::kOutput), 0);
    partition.num_planes = 2;
    partition.plane_of = {kUnassignedPlane, 0, 0, 1, 1, kUnassignedPlane};
  }
};

TEST(Power, RsfqStaticHandComputed) {
  Fixture f;
  PowerOptions options;
  options.supply_mv = 5.0;
  const PowerReport report = analyze_power(f.netlist, f.partition, options);
  EXPECT_DOUBLE_EQ(report.total_bias_ma, 4 * f.dff_bias);
  // mA * mV = uW.
  EXPECT_DOUBLE_EQ(report.rsfq_static_uw, 4 * f.dff_bias * 5.0);
}

TEST(Power, BalancedStackBurnsNothing) {
  Fixture f;
  const PowerReport report = analyze_power(f.netlist, f.partition);
  EXPECT_DOUBLE_EQ(report.supply_current_ma, 2 * f.dff_bias);
  // 2 planes * 2.5 mV * B_max == B_cir * 2.5 mV exactly (balanced).
  EXPECT_NEAR(report.dummy_burn_uw, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.current_reduction_factor(), 2.0);
}

TEST(Power, ImbalanceBurnsInDummies) {
  Fixture f;
  f.partition.plane_of = {kUnassignedPlane, 0, 0, 0, 1, kUnassignedPlane};
  const PowerReport report = analyze_power(f.netlist, f.partition);
  EXPECT_DOUBLE_EQ(report.supply_current_ma, 3 * f.dff_bias);
  // Supply 2 * 2.5 * 3b; ideal 2.5 * 4b -> burn 2.5 * 2b.
  EXPECT_NEAR(report.dummy_burn_uw, 2.5 * 2 * f.dff_bias, 1e-9);
}

TEST(Power, DynamicScalesWithFrequencyAndActivity) {
  Fixture f;
  PowerOptions slow;
  slow.clock_ghz = 10.0;
  PowerOptions fast = slow;
  fast.clock_ghz = 40.0;
  const double p_slow = analyze_power(f.netlist, f.partition, slow).dynamic_uw;
  const double p_fast = analyze_power(f.netlist, f.partition, fast).dynamic_uw;
  EXPECT_NEAR(p_fast, 4.0 * p_slow, 1e-15);
  EXPECT_GT(p_slow, 0.0);
}

TEST(Power, RecyclingCutsSupplyCurrentByAboutK) {
  const Netlist netlist = build_mapped("ksa8");
  SolverConfig popt;
  popt.num_planes = 5;
  const Partition partition = Solver(popt).run(netlist).value().partition;
  const PowerReport report = analyze_power(netlist, partition);
  EXPECT_GT(report.current_reduction_factor(), 4.0);
  EXPECT_LE(report.current_reduction_factor(), 5.0 + 1e-9);
  // Static RSFQ dwarfs dynamic switching: the energy argument of sec. I.
  EXPECT_GT(report.rsfq_static_uw, 100.0 * report.dynamic_uw);
}

TEST(Power, FormatMentionsAllSchemes) {
  Fixture f;
  const std::string text = format_power_report(analyze_power(f.netlist, f.partition));
  EXPECT_NE(text.find("RSFQ"), std::string::npos);
  EXPECT_NE(text.find("ERSFQ"), std::string::npos);
  EXPECT_NE(text.find("recycled"), std::string::npos);
  EXPECT_NE(text.find("reduction"), std::string::npos);
}

}  // namespace
}  // namespace sfqpart
