#include "recycling/insertion.h"

#include <gtest/gtest.h>

#include "core/solver.h"
#include "gen/sim.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"
#include "netlist/validate.h"
#include "recycling/coupling.h"
#include "util/rng.h"

namespace sfqpart {
namespace {

// Chain of 3 DFFs over 3 planes (one boundary crossing per stage).
struct Fixture {
  Netlist netlist{&default_sfq_library(), "chain"};
  Partition partition;

  Fixture() {
    const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
    GateId prev = in;
    for (int i = 0; i < 3; ++i) {
      const GateId d = netlist.add_gate_of_kind("d" + std::to_string(i), CellKind::kDff);
      netlist.connect(prev, 0, d, 0);
      prev = d;
    }
    netlist.connect(prev, 0, netlist.add_gate_of_kind("pin:y", CellKind::kOutput), 0);
    partition.num_planes = 3;
    partition.plane_of = {kUnassignedPlane, 0, 1, 2, kUnassignedPlane};
  }
};

TEST(CouplingInsertion, OnePairPerAdjacentCrossing) {
  Fixture f;
  const CouplingInsertion result = apply_coupling_insertion(f.netlist, f.partition);
  EXPECT_EQ(result.pairs_inserted, 2);
  // 5 original gates + 2 * (driver + receiver).
  EXPECT_EQ(result.netlist.num_gates(), 9);
  EXPECT_TRUE(validate(result.netlist).ok());
}

TEST(CouplingInsertion, PairCountMatchesPlan) {
  const Netlist netlist = build_mapped("ksa8");
  SolverConfig options;
  options.num_planes = 4;
  const Partition partition = Solver(options).run(netlist).value().partition;
  const CouplingReport plan = plan_coupling(netlist, partition);
  const CouplingInsertion result = apply_coupling_insertion(netlist, partition);
  EXPECT_EQ(result.pairs_inserted, plan.total_pairs);
}

TEST(CouplingInsertion, ResultHasOnlyAdjacentCrossings) {
  const Netlist netlist = build_mapped("mult4");
  SolverConfig options;
  options.num_planes = 5;
  const Partition partition = Solver(options).run(netlist).value().partition;
  const CouplingInsertion result = apply_coupling_insertion(netlist, partition);
  // After insertion every remaining cross-plane link spans exactly one
  // boundary (the coupled driver->receiver hop itself).
  const CouplingReport after = plan_coupling(result.netlist, result.partition);
  for (std::size_t d = 2; d < after.links_by_distance.size(); ++d) {
    EXPECT_EQ(after.links_by_distance[d], 0) << "distance " << d;
  }
  EXPECT_EQ(after.total_pairs, after.cross_connections);
}

TEST(CouplingInsertion, DriverOnSendingPlaneReceiverAcross) {
  Fixture f;
  const CouplingInsertion result = apply_coupling_insertion(f.netlist, f.partition);
  const GateId txd0 = result.netlist.find_gate("txd_0");
  const GateId txr0 = result.netlist.find_gate("txr_0");
  ASSERT_NE(txd0, kInvalidGate);
  ASSERT_NE(txr0, kInvalidGate);
  EXPECT_EQ(result.partition.plane(txd0), 0);
  EXPECT_EQ(result.partition.plane(txr0), 1);
  EXPECT_EQ(result.netlist.cell_of(txd0).kind, CellKind::kTxDriver);
  EXPECT_EQ(result.netlist.cell_of(txr0).kind, CellKind::kTxReceiver);
}

TEST(CouplingInsertion, DownwardCrossingsBridgeToo) {
  Fixture f;
  // Reverse the plane order: connections now go 2 -> 1 -> 0.
  f.partition.plane_of = {kUnassignedPlane, 2, 1, 0, kUnassignedPlane};
  const CouplingInsertion result = apply_coupling_insertion(f.netlist, f.partition);
  EXPECT_EQ(result.pairs_inserted, 2);
  const GateId txd0 = result.netlist.find_gate("txd_0");
  EXPECT_EQ(result.partition.plane(txd0), 2);
  EXPECT_EQ(result.partition.plane(result.netlist.find_gate("txr_0")), 1);
}

TEST(CouplingInsertion, AddedBiasAccounting) {
  Fixture f;
  const CouplingInsertion result = apply_coupling_insertion(f.netlist, f.partition);
  const CellLibrary& lib = default_sfq_library();
  const double drv = lib.cell(*lib.find_kind(CellKind::kTxDriver)).bias_ma;
  const double rcv = lib.cell(*lib.find_kind(CellKind::kTxReceiver)).bias_ma;
  // Boundary 0|1 and 1|2: plane 0 gets one driver, plane 1 a receiver and
  // a driver, plane 2 a receiver.
  EXPECT_DOUBLE_EQ(result.added_bias_ma[0], drv);
  EXPECT_DOUBLE_EQ(result.added_bias_ma[1], drv + rcv);
  EXPECT_DOUBLE_EQ(result.added_bias_ma[2], rcv);

  // The extended partition's metrics include the coupling cells' bias.
  const PartitionMetrics before = compute_metrics(f.netlist, f.partition);
  const PartitionMetrics after = compute_metrics(result.netlist, result.partition);
  EXPECT_NEAR(after.total_bias_ma,
              before.total_bias_ma + 2 * (drv + rcv), 1e-9);
}

TEST(CouplingInsertion, FunctionPreserved) {
  // Coupling cells are transparent repeaters: word-level behaviour of the
  // implemented netlist is unchanged.
  const Netlist netlist = build_mapped("ksa4");
  SolverConfig options;
  options.num_planes = 3;
  const Partition partition = Solver(options).run(netlist).value().partition;
  const CouplingInsertion result = apply_coupling_insertion(netlist, partition);
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    SignalValues in;
    set_word(in, "a", 4, rng.uniform_index(16));
    set_word(in, "b", 4, rng.uniform_index(16));
    EXPECT_EQ(simulate(netlist, in), simulate(result.netlist, in));
  }
}

TEST(CouplingInsertion, NoCrossingsNoChange) {
  Fixture f;
  f.partition.plane_of = {kUnassignedPlane, 1, 1, 1, kUnassignedPlane};
  const CouplingInsertion result = apply_coupling_insertion(f.netlist, f.partition);
  EXPECT_EQ(result.pairs_inserted, 0);
  EXPECT_EQ(result.netlist.num_gates(), f.netlist.num_gates());
}

}  // namespace
}  // namespace sfqpart
