#include "recycling/bias_plan.h"
#include "recycling/coupling.h"

#include <gtest/gtest.h>

#include "core/solver.h"
#include "gen/suite.h"

namespace sfqpart {
namespace {

// Chain of 6 DFFs split 2/2/2 over 3 planes.
struct Fixture {
  Netlist netlist{&default_sfq_library(), "stack"};
  Partition partition;
  double dff_bias;

  Fixture() {
    const CellLibrary& lib = default_sfq_library();
    dff_bias = lib.cell(*lib.find_kind(CellKind::kDff)).bias_ma;
    const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
    GateId prev = in;
    for (int i = 0; i < 6; ++i) {
      const GateId d = netlist.add_gate_of_kind("d" + std::to_string(i), CellKind::kDff);
      netlist.connect(prev, 0, d, 0);
      prev = d;
    }
    netlist.connect(prev, 0, netlist.add_gate_of_kind("pin:y", CellKind::kOutput), 0);
    partition.num_planes = 3;
    partition.plane_of = {kUnassignedPlane, 0, 0, 1, 1, 2, 2, kUnassignedPlane};
  }
};

TEST(BiasPlan, BalancedStackHasNoDummies) {
  Fixture f;
  const BiasPlan plan = make_bias_plan(f.netlist, f.partition);
  ASSERT_EQ(plan.planes.size(), 3u);
  EXPECT_DOUBLE_EQ(plan.supply_ma, 2 * f.dff_bias);
  EXPECT_DOUBLE_EQ(plan.total_dummy_ma, 0.0);
  EXPECT_DOUBLE_EQ(plan.power_overhead(), 1.0);
  for (const PlaneBias& plane : plan.planes) {
    EXPECT_EQ(plane.gates, 2);
    EXPECT_DOUBLE_EQ(plane.dummy_ma, 0.0);
  }
}

TEST(BiasPlan, ImbalanceBecomesDummyCurrent) {
  Fixture f;
  f.partition.plane_of = {kUnassignedPlane, 0, 0, 0, 1, 1, 2, kUnassignedPlane};
  const BiasPlan plan = make_bias_plan(f.netlist, f.partition);
  EXPECT_DOUBLE_EQ(plan.supply_ma, 3 * f.dff_bias);
  EXPECT_DOUBLE_EQ(plan.planes[0].dummy_ma, 0.0);
  EXPECT_DOUBLE_EQ(plan.planes[1].dummy_ma, f.dff_bias);
  EXPECT_DOUBLE_EQ(plan.planes[2].dummy_ma, 2 * f.dff_bias);
  // Dummy sizing: ceil(0.95/0.3) = 4, ceil(1.90/0.3) = 7 JTL stacks.
  EXPECT_EQ(plan.planes[0].dummy_cells, 0);
  EXPECT_EQ(plan.planes[1].dummy_cells, 4);
  EXPECT_EQ(plan.planes[2].dummy_cells, 7);
  EXPECT_DOUBLE_EQ(plan.total_dummy_ma, 3 * f.dff_bias);
  // I_comp identity again, through the plan this time.
  EXPECT_NEAR(plan.total_dummy_ma, 3 * plan.supply_ma - plan.total_bias_ma, 1e-9);
}

TEST(BiasPlan, PlanePotentialsDescendByRail) {
  Fixture f;
  BiasPlanOptions options;
  options.rail_mv = 2.5;
  const BiasPlan plan = make_bias_plan(f.netlist, f.partition, options);
  EXPECT_DOUBLE_EQ(plan.stack_voltage_mv, 7.5);
  EXPECT_DOUBLE_EQ(plan.planes[0].potential_mv, 7.5);
  EXPECT_DOUBLE_EQ(plan.planes[1].potential_mv, 5.0);
  EXPECT_DOUBLE_EQ(plan.planes[2].potential_mv, 2.5);
}

TEST(BiasPlan, PadSavingMatchesPaperArithmetic) {
  // Paper section V: a 2.5 A chip with 100 mA pads needs 31 lines under
  // parallel biasing ([23]); with recycling the supply is B_max.
  const Netlist netlist = build_mapped("ksa8");  // B_cir ~ 178 mA
  SolverConfig popt;
  popt.num_planes = 3;
  const SolverResult result = Solver(popt).run(netlist).value();
  const BiasPlan plan = make_bias_plan(netlist, result.partition);
  EXPECT_EQ(plan.pads_parallel, 2);  // ceil(178/100)
  EXPECT_EQ(plan.pads_serial, 1);
  EXPECT_EQ(plan.pads_saved(), 1);
}

TEST(BiasPlan, FormatShowsStack) {
  Fixture f;
  const std::string text = format_bias_plan(make_bias_plan(f.netlist, f.partition));
  EXPECT_NE(text.find("GP0"), std::string::npos);
  EXPECT_NE(text.find("GP2"), std::string::npos);
  EXPECT_NE(text.find("I_supply"), std::string::npos);
  EXPECT_NE(text.find("bias pads"), std::string::npos);
}

TEST(Coupling, ChainNeedsOnePairPerBoundaryCrossing) {
  Fixture f;
  const CouplingReport report = plan_coupling(f.netlist, f.partition);
  // Crossings: d1->d2 (plane 0->1), d3->d4 (1->2); both distance 1.
  EXPECT_EQ(report.cross_connections, 2);
  EXPECT_EQ(report.total_pairs, 2);
  EXPECT_EQ(report.links_by_distance[1], 2);
  EXPECT_EQ(report.pairs_per_boundary, (std::vector<int>{1, 1}));
}

TEST(Coupling, LongHopsCostDistancePairs) {
  Fixture f;
  // d0,d1 on plane 0; d2..d4 plane 2; d5 plane 1: creates a distance-2 hop
  // and a backward hop.
  f.partition.plane_of = {kUnassignedPlane, 0, 0, 2, 2, 2, 1, kUnassignedPlane};
  const CouplingReport report = plan_coupling(f.netlist, f.partition);
  // d1->d2: |0-2| = 2; d4->d5: |2-1| = 1.
  EXPECT_EQ(report.cross_connections, 2);
  EXPECT_EQ(report.total_pairs, 3);
  EXPECT_EQ(report.links_by_distance[2], 1);
  EXPECT_EQ(report.links_by_distance[1], 1);
  EXPECT_EQ(report.pairs_per_boundary, (std::vector<int>{1, 2}));
  CouplingOptions options;
  EXPECT_DOUBLE_EQ(report.worst_hop_delay_ps, 2 * options.hop_delay_ps);
  EXPECT_DOUBLE_EQ(report.area_overhead_um2, 3 * options.pair_area_um2);
}

TEST(Coupling, FanoutCountsPerPhysicalLink) {
  // One splitter driving two sinks on another plane: two links, two pairs.
  Netlist netlist(&default_sfq_library(), "fan");
  const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId s = netlist.add_gate_of_kind("s", CellKind::kSplit);
  const GateId d0 = netlist.add_gate_of_kind("d0", CellKind::kDff);
  const GateId d1 = netlist.add_gate_of_kind("d1", CellKind::kDff);
  netlist.connect(in, 0, s, 0);
  netlist.connect(s, 0, d0, 0);
  netlist.connect(s, 1, d1, 0);
  netlist.connect(d0, 0, netlist.add_gate_of_kind("pin:y0", CellKind::kOutput), 0);
  netlist.connect(d1, 0, netlist.add_gate_of_kind("pin:y1", CellKind::kOutput), 0);
  Partition partition;
  partition.num_planes = 2;
  partition.plane_of = {kUnassignedPlane, 0, 1, 1,
                        kUnassignedPlane, kUnassignedPlane};
  const CouplingReport report = plan_coupling(netlist, partition);
  EXPECT_EQ(report.cross_connections, 2);
  EXPECT_EQ(report.total_pairs, 2);
}

TEST(Coupling, FormatListsBoundaries) {
  Fixture f;
  const std::string text = format_coupling_report(plan_coupling(f.netlist, f.partition));
  EXPECT_NE(text.find("GP0|GP1"), std::string::npos);
  EXPECT_NE(text.find("driver/receiver pairs"), std::string::npos);
}

}  // namespace
}  // namespace sfqpart
