#include "floorplan/floorplan.h"

#include <gtest/gtest.h>

#include "core/solver.h"
#include "def/def_parser.h"
#include "def/def_writer.h"
#include "gen/suite.h"

namespace sfqpart {
namespace {

struct Fixture {
  Netlist netlist = build_mapped("ksa8");
  Partition partition;

  Fixture() {
    SolverConfig options;
    options.num_planes = 4;
    partition = Solver(options).run(netlist).value().partition;
  }
};

TEST(Floorplan, StripesStackTopDownWithoutOverlap) {
  Fixture f;
  const Floorplan plan = build_floorplan(f.netlist, f.partition);
  ASSERT_EQ(plan.stripes.size(), 4u);
  EXPECT_DOUBLE_EQ(plan.stripes[0].y_hi_um, plan.die_height_um);
  for (std::size_t k = 0; k < plan.stripes.size(); ++k) {
    EXPECT_EQ(plan.stripes[k].plane, static_cast<int>(k));
    EXPECT_GT(plan.stripes[k].y_hi_um, plan.stripes[k].y_lo_um);
    if (k > 0) {
      // Plane k sits strictly below plane k-1, separated by the moat.
      EXPECT_LT(plan.stripes[k].y_hi_um, plan.stripes[k - 1].y_lo_um);
    }
  }
  EXPECT_GE(plan.stripes.back().y_lo_um, -1e-9);
}

TEST(Floorplan, GatesPlacedInsideTheirStripe) {
  Fixture f;
  const FloorplanOptions options;
  const Floorplan plan = build_floorplan(f.netlist, f.partition, options);
  for (GateId g = 0; g < f.netlist.num_gates(); ++g) {
    if (!f.partition.assigned(g)) continue;
    const PlaneStripe& stripe = plan.stripe_of(f.partition.plane(g));
    EXPECT_GE(plan.y_um[static_cast<std::size_t>(g)], stripe.y_lo_um - 1e-9)
        << f.netlist.gate(g).name;
    EXPECT_LT(plan.y_um[static_cast<std::size_t>(g)] + options.row_height_um,
              stripe.y_hi_um + 1e-9)
        << f.netlist.gate(g).name;
    EXPECT_GE(plan.x_um[static_cast<std::size_t>(g)], 0.0);
    EXPECT_LE(plan.x_um[static_cast<std::size_t>(g)], plan.die_width_um);
  }
}

TEST(Floorplan, StripeCapacityCoversPlaneArea) {
  Fixture f;
  const FloorplanOptions options;
  const Floorplan plan = build_floorplan(f.netlist, f.partition, options);
  std::vector<double> plane_area(4, 0.0);
  for (GateId g = 0; g < f.netlist.num_gates(); ++g) {
    if (f.partition.assigned(g)) {
      plane_area[static_cast<std::size_t>(f.partition.plane(g))] +=
          f.netlist.area_of(g);
    }
  }
  for (const PlaneStripe& stripe : plan.stripes) {
    const double capacity =
        stripe.rows * options.row_height_um * plan.die_width_um;
    EXPECT_GE(capacity * 1.0001,
              plane_area[static_cast<std::size_t>(stripe.plane)])
        << "stripe " << stripe.plane;
  }
}

TEST(Floorplan, BarycenterPassesShortenWires) {
  Fixture f;
  FloorplanOptions no_passes;
  no_passes.ordering_passes = 0;
  FloorplanOptions with_passes;
  with_passes.ordering_passes = 4;
  const double before =
      total_hpwl_um(f.netlist, build_floorplan(f.netlist, f.partition, no_passes));
  const double after =
      total_hpwl_um(f.netlist, build_floorplan(f.netlist, f.partition, with_passes));
  EXPECT_LT(after, before);
}

TEST(Floorplan, IoGatesOnTheLeftEdge) {
  Fixture f;
  const Floorplan plan = build_floorplan(f.netlist, f.partition);
  for (GateId g = 0; g < f.netlist.num_gates(); ++g) {
    if (f.netlist.is_io(g)) {
      EXPECT_DOUBLE_EQ(plan.x_um[static_cast<std::size_t>(g)], 0.0);
    }
  }
}

TEST(Floorplan, Deterministic) {
  Fixture f;
  const Floorplan a = build_floorplan(f.netlist, f.partition);
  const Floorplan b = build_floorplan(f.netlist, f.partition);
  EXPECT_EQ(a.x_um, b.x_um);
  EXPECT_EQ(a.y_um, b.y_um);
}

TEST(Floorplan, HpwlHandComputed) {
  Netlist netlist(&default_sfq_library(), "wire");
  const GateId a = netlist.add_gate_of_kind("a", CellKind::kDff);
  const GateId b = netlist.add_gate_of_kind("b", CellKind::kDff);
  netlist.connect(a, 0, b, 0);
  Floorplan plan;
  plan.x_um = {0.0, 30.0};
  plan.y_um = {0.0, 40.0};
  EXPECT_DOUBLE_EQ(total_hpwl_um(netlist, plan), 70.0);
}

TEST(Floorplan, FormatListsStripes) {
  Fixture f;
  const Floorplan plan = build_floorplan(f.netlist, f.partition);
  const std::string text = format_floorplan(f.netlist, plan);
  EXPECT_NE(text.find("GP0"), std::string::npos);
  EXPECT_NE(text.find("GP3"), std::string::npos);
  EXPECT_NE(text.find("HPWL"), std::string::npos);
}

TEST(Floorplan, PlacedDefRoundTripsCoordinates) {
  Fixture f;
  const Floorplan plan = build_floorplan(f.netlist, f.partition);
  const def::DefWriterOptions options;
  auto design = def::parse_def(
      def::write_def_placed(f.netlist, options, plan.x_um, plan.y_um));
  ASSERT_TRUE(design.is_ok()) << design.status().message();
  EXPECT_EQ(static_cast<int>(design->components.size()),
            f.netlist.num_partitionable_gates());
  for (const def::DefComponent& comp : design->components) {
    const GateId g = f.netlist.find_gate(comp.name);
    ASSERT_NE(g, kInvalidGate);
    EXPECT_NEAR(static_cast<double>(comp.location.x) / options.dbu_per_micron,
                plan.x_um[static_cast<std::size_t>(g)], 1e-3)
        << comp.name;
    EXPECT_NEAR(static_cast<double>(comp.location.y) / options.dbu_per_micron,
                plan.y_um[static_cast<std::size_t>(g)], 1e-3)
        << comp.name;
    // Inside the die.
    EXPECT_LE(comp.location.x, design->die_hi.x);
    EXPECT_LE(comp.location.y, design->die_hi.y);
  }
}

TEST(Floorplan, MoreGapGrowsDie) {
  Fixture f;
  FloorplanOptions narrow;
  narrow.stripe_gap_um = 0.0;
  FloorplanOptions wide;
  wide.stripe_gap_um = 100.0;
  EXPECT_GT(build_floorplan(f.netlist, f.partition, wide).die_height_um,
            build_floorplan(f.netlist, f.partition, narrow).die_height_um);
}

}  // namespace
}  // namespace sfqpart
