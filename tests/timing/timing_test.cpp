#include "timing/timing.h"

#include <gtest/gtest.h>

#include "core/solver.h"
#include "gen/suite.h"
#include "recycling/insertion.h"

namespace sfqpart {
namespace {

// in -> DFF d0 -> SPLIT -> {DFF d1, JTL -> DFF d2}
struct Fixture {
  Netlist netlist{&default_sfq_library(), "t"};
  GateId in, d0, s, d1, j, d2;

  Fixture() {
    in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
    d0 = netlist.add_gate_of_kind("d0", CellKind::kDff);
    s = netlist.add_gate_of_kind("s", CellKind::kSplit);
    d1 = netlist.add_gate_of_kind("d1", CellKind::kDff);
    j = netlist.add_gate_of_kind("j", CellKind::kJtl);
    d2 = netlist.add_gate_of_kind("d2", CellKind::kDff);
    netlist.connect(in, 0, d0, 0);
    netlist.connect(d0, 0, s, 0);
    netlist.connect(s, 0, d1, 0);
    netlist.connect(s, 1, j, 0);
    netlist.connect(j, 0, d2, 0);
    netlist.connect(d1, 0, netlist.add_gate_of_kind("pin:y0", CellKind::kOutput), 0);
    netlist.connect(d2, 0, netlist.add_gate_of_kind("pin:y1", CellKind::kOutput), 0);
  }
};

TEST(Timing, HandComputedCriticalSegment) {
  Fixture f;
  TimingOptions options;  // clk_to_q 7, splitter 7, jtl 5, setup 4
  const TimingReport report = analyze_timing(f.netlist, options);
  // Worst segment: d0 (7) -> split (7) -> jtl (5) -> d2 setup (4) = 23 ps.
  EXPECT_DOUBLE_EQ(report.min_period_ps, 23.0);
  EXPECT_NEAR(report.fmax_ghz, 1000.0 / 23.0, 1e-9);
  EXPECT_DOUBLE_EQ(report.critical_logic_ps, 19.0);
  EXPECT_DOUBLE_EQ(report.critical_wire_ps, 0.0);
  ASSERT_EQ(report.critical_path.size(), 4u);
  EXPECT_EQ(report.critical_path.front(), "d0");
  EXPECT_EQ(report.critical_path.back(), "d2");
}

TEST(Timing, CouplingHopsStretchThePeriod) {
  Fixture f;
  Partition partition;
  partition.num_planes = 4;
  // d0 on plane 0; the splitter cone on plane 3 -> distance-3 crossing.
  partition.plane_of = {kUnassignedPlane, 0, 3, 3, 3, 3,
                        kUnassignedPlane, kUnassignedPlane};
  TimingOptions options;
  const TimingReport base = analyze_timing(f.netlist, options);
  const TimingReport far = analyze_timing(f.netlist, options, nullptr, &partition);
  EXPECT_DOUBLE_EQ(far.min_period_ps, base.min_period_ps + 3 * options.coupling_hop_ps);
  EXPECT_DOUBLE_EQ(far.critical_coupling_ps, 3 * options.coupling_hop_ps);

  // Adjacent planes cost one hop.
  partition.plane_of = {kUnassignedPlane, 0, 1, 1, 1, 1,
                        kUnassignedPlane, kUnassignedPlane};
  const TimingReport near = analyze_timing(f.netlist, options, nullptr, &partition);
  EXPECT_DOUBLE_EQ(near.min_period_ps, base.min_period_ps + options.coupling_hop_ps);
}

TEST(Timing, WireDelayFromFloorplan) {
  Fixture f;
  Floorplan plan;
  plan.x_um.assign(static_cast<std::size_t>(f.netlist.num_gates()), 0.0);
  plan.y_um.assign(static_cast<std::size_t>(f.netlist.num_gates()), 0.0);
  // Put d2 1 mm away from the JTL feeding it.
  plan.x_um[static_cast<std::size_t>(f.d2)] = 1000.0;
  TimingOptions options;
  const TimingReport base = analyze_timing(f.netlist, options);
  const TimingReport wired = analyze_timing(f.netlist, options, &plan);
  EXPECT_DOUBLE_EQ(wired.min_period_ps, base.min_period_ps + options.wire_ps_per_mm);
  EXPECT_DOUBLE_EQ(wired.critical_wire_ps, options.wire_ps_per_mm);
}

TEST(Timing, MoreSplitLevelsSlowTheClock) {
  // ksa32 has deeper splitter trees than ksa4 -> longer async segments.
  const TimingReport small = analyze_timing(build_mapped("ksa4"));
  const TimingReport large = analyze_timing(build_mapped("ksa32"));
  EXPECT_GE(large.min_period_ps, small.min_period_ps);
  EXPECT_GT(small.fmax_ghz, 10.0);   // tens of GHz, the SFQ regime
  EXPECT_LT(small.fmax_ghz, 100.0);
}

TEST(Timing, PartitionSlowsRealCircuit) {
  const Netlist netlist = build_mapped("ksa8");
  SolverConfig popt;
  popt.num_planes = 5;
  const Partition partition = Solver(popt).run(netlist).value().partition;
  const TimingReport flat = analyze_timing(netlist);
  const TimingReport cut = analyze_timing(netlist, {}, nullptr, &partition);
  EXPECT_GE(cut.min_period_ps, flat.min_period_ps);
}

TEST(Timing, InsertedCouplingCellsMatchHopModel) {
  // Analyzing the *implemented* netlist (TX cells inserted, each link now
  // adjacent) should cost at least as much as the hop-model estimate of
  // the original: insertion adds the TX cells' own propagation delay too.
  const Netlist netlist = build_mapped("ksa4");
  SolverConfig popt;
  popt.num_planes = 3;
  const Partition partition = Solver(popt).run(netlist).value().partition;
  const CouplingInsertion inserted = apply_coupling_insertion(netlist, partition);
  const TimingReport modeled = analyze_timing(netlist, {}, nullptr, &partition);
  const TimingReport implemented =
      analyze_timing(inserted.netlist, {}, nullptr, &inserted.partition);
  EXPECT_GE(implemented.min_period_ps + 1e-9, modeled.min_period_ps);
}

TEST(Timing, FormatMentionsPathAndFmax) {
  Fixture f;
  const std::string text = format_timing_report(analyze_timing(f.netlist));
  EXPECT_NE(text.find("Fmax"), std::string::npos);
  EXPECT_NE(text.find("d0 -> s -> j -> d2"), std::string::npos);
}

}  // namespace
}  // namespace sfqpart
