#include <gtest/gtest.h>

#include "gen/ksa.h"
#include "sfq/mapper.h"
#include "timing/timing.h"

namespace sfqpart {
namespace {

TEST(ClockSkew, NoTreeReported) {
  const Netlist mapped = map_to_sfq(build_ksa(4));  // default: no clock tree
  const ClockSkewReport report = analyze_clock_skew(mapped);
  EXPECT_FALSE(report.has_clock_tree);
  const std::string text = format_clock_skew_report(report);
  EXPECT_NE(text.find("no explicit clock tree"), std::string::npos);
}

TEST(ClockSkew, HandComputedArrivals) {
  // clk -> SPLIT -> {d0.CLK, SPLIT -> {d1.CLK, d2.CLK}}: arrivals differ by
  // one splitter delay between the first and second level.
  Netlist netlist(&default_sfq_library(), "skew");
  const GateId clk = netlist.add_gate_of_kind("pin:clk", CellKind::kInput);
  const GateId s0 = netlist.add_gate_of_kind("s0", CellKind::kSplit);
  const GateId s1 = netlist.add_gate_of_kind("s1", CellKind::kSplit);
  const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId d0 = netlist.add_gate_of_kind("d0", CellKind::kDff);
  const GateId d1 = netlist.add_gate_of_kind("d1", CellKind::kDff);
  const GateId d2 = netlist.add_gate_of_kind("d2", CellKind::kDff);
  netlist.connect(clk, 0, s0, 0);
  netlist.connect_clock(s0, 0, d0);
  netlist.connect(s0, 1, s1, 0);
  netlist.connect_clock(s1, 0, d1);
  netlist.connect_clock(s1, 1, d2);
  netlist.connect(in, 0, d0, 0);
  netlist.connect(d0, 0, d1, 0);
  netlist.connect(d1, 0, d2, 0);
  netlist.connect(d2, 0, netlist.add_gate_of_kind("pin:y", CellKind::kOutput), 0);

  TimingOptions options;  // splitter 7 ps
  const ClockSkewReport report = analyze_clock_skew(netlist, options);
  ASSERT_TRUE(report.has_clock_tree);
  EXPECT_EQ(report.clocked_gates, 3);
  EXPECT_DOUBLE_EQ(report.min_arrival_ps, 7.0);   // d0: one splitter
  EXPECT_DOUBLE_EQ(report.max_arrival_ps, 14.0);  // d1/d2: two splitters
  EXPECT_DOUBLE_EQ(report.skew_ps, 7.0);
  // d0 -> d1 and d1 -> d2 are both clocked in flow order (7 <= 14, 14 <= 14).
  EXPECT_EQ(report.flow_edges, 2);
  EXPECT_EQ(report.counterflow_edges, 0);
  // d0 launches at 7 + clk_to_q(7) = 14; d1's clock is at 14 -> margin 0.
  EXPECT_DOUBLE_EQ(report.worst_hold_margin_ps, 0.0);
}

TEST(ClockSkew, MappedTreeIsBalancedByConstruction) {
  SfqMapperOptions options;
  options.insert_clock_tree = true;
  const Netlist mapped = map_to_sfq(build_ksa(8), options);
  const ClockSkewReport report = analyze_clock_skew(mapped);
  ASSERT_TRUE(report.has_clock_tree);
  EXPECT_GT(report.clocked_gates, 50);
  // legalize_fanout builds a balanced binary tree: leaf depths differ by
  // at most one splitter level.
  TimingOptions timing;
  EXPECT_LE(report.skew_ps, timing.splitter_delay_ps + 1e-9);
  EXPECT_GE(report.flow_edges + report.counterflow_edges, 1);
}

}  // namespace
}  // namespace sfqpart
