#include "gen/ksa.h"

#include <gtest/gtest.h>

#include "gen/sim.h"
#include "netlist/validate.h"
#include "util/rng.h"

namespace sfqpart {
namespace {

std::uint64_t run_add(const Netlist& adder, int width, std::uint64_t a,
                      std::uint64_t b) {
  SignalValues in;
  set_word(in, "a", width, a);
  set_word(in, "b", width, b);
  const auto out = simulate(adder, in);
  const std::uint64_t sum = get_word(out, "s", width);
  const std::uint64_t cout = out.at("cout") ? 1 : 0;
  return sum | (cout << width);
}

TEST(Ksa, ExhaustiveWidth4) {
  const Netlist adder = build_ksa(4);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      ASSERT_EQ(run_add(adder, 4, a, b), a + b) << a << "+" << b;
    }
  }
}

class KsaWidths : public ::testing::TestWithParam<int> {};

TEST_P(KsaWidths, RandomVectorsAdd) {
  const int width = GetParam();
  const Netlist adder = build_ksa(width);
  const std::uint64_t mask =
      width == 64 ? ~0ULL : ((1ULL << width) - 1);
  Rng rng(static_cast<std::uint64_t>(width));
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.next_u64() & mask;
    const std::uint64_t b = rng.next_u64() & mask;
    // width+1-bit result; for width 32 the sum fits in u64 exactly.
    ASSERT_EQ(run_add(adder, width, a, b), a + b);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, KsaWidths, ::testing::Values(1, 2, 3, 8, 16, 32),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(Ksa, EdgeVectors) {
  const Netlist adder = build_ksa(8);
  EXPECT_EQ(run_add(adder, 8, 0, 0), 0u);
  EXPECT_EQ(run_add(adder, 8, 255, 255), 510u);
  EXPECT_EQ(run_add(adder, 8, 255, 1), 256u);  // full carry ripple
  EXPECT_EQ(run_add(adder, 8, 0x55, 0xAA), 0xFFu);
}

TEST(Ksa, StructureIsCleanDag) {
  const Netlist adder = build_ksa(16);
  ValidateOptions options;
  options.enforce_sfq_fanout = false;  // structural: unlimited fanout
  const auto report = validate(adder, options);
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? "" : report.issues[0]);
}

TEST(Ksa, GateCountGrowsNearLinearly) {
  // Kogge-Stone is O(W log W) in prefix cells.
  const int g8 = build_ksa(8).num_partitionable_gates();
  const int g16 = build_ksa(16).num_partitionable_gates();
  const int g32 = build_ksa(32).num_partitionable_gates();
  EXPECT_GT(g16, 2 * g8 - 10);
  EXPECT_LT(g32, 4 * g16);
}

TEST(Ksa, DeterministicAcrossCalls) {
  const Netlist a = build_ksa(8);
  const Netlist b = build_ksa(8);
  EXPECT_EQ(a.num_gates(), b.num_gates());
  EXPECT_EQ(a.num_nets(), b.num_nets());
  for (GateId g = 0; g < a.num_gates(); ++g) {
    EXPECT_EQ(a.gate(g).name, b.gate(g).name);
  }
}

}  // namespace
}  // namespace sfqpart
