#include "gen/divider.h"

#include <gtest/gtest.h>

#include "gen/sim.h"
#include "netlist/validate.h"
#include "util/rng.h"

namespace sfqpart {
namespace {

struct QuotRem {
  std::uint64_t q;
  std::uint64_t r;
};

QuotRem run_div(const Netlist& divider, int width, std::uint64_t n, std::uint64_t d) {
  SignalValues in;
  set_word(in, "n", width, n);
  set_word(in, "d", width, d);
  const auto out = simulate(divider, in);
  return QuotRem{get_word(out, "q", width), get_word(out, "r", width)};
}

TEST(Divider, ExhaustiveWidth4) {
  const Netlist divider = build_divider(4);
  for (std::uint64_t n = 0; n < 16; ++n) {
    for (std::uint64_t d = 1; d < 16; ++d) {  // d == 0 unspecified
      const QuotRem result = run_div(divider, 4, n, d);
      ASSERT_EQ(result.q, n / d) << n << "/" << d;
      ASSERT_EQ(result.r, n % d) << n << "%" << d;
    }
  }
}

class DividerWidths : public ::testing::TestWithParam<int> {};

TEST_P(DividerWidths, RandomVectorsDivide) {
  const int width = GetParam();
  const Netlist divider = build_divider(width);
  const std::uint64_t mask = (1ULL << width) - 1;
  Rng rng(static_cast<std::uint64_t>(width) * 17);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t n = rng.next_u64() & mask;
    std::uint64_t d = rng.next_u64() & mask;
    if (d == 0) d = 1;
    const QuotRem result = run_div(divider, width, n, d);
    ASSERT_EQ(result.q, n / d) << n << "/" << d;
    ASSERT_EQ(result.r, n % d) << n << "%" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DividerWidths, ::testing::Values(2, 3, 6, 8),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(Divider, EdgeVectors) {
  const Netlist divider = build_divider(8);
  EXPECT_EQ(run_div(divider, 8, 0, 7).q, 0u);
  EXPECT_EQ(run_div(divider, 8, 255, 1).q, 255u);
  EXPECT_EQ(run_div(divider, 8, 255, 255).q, 1u);
  EXPECT_EQ(run_div(divider, 8, 254, 255).q, 0u);
  EXPECT_EQ(run_div(divider, 8, 254, 255).r, 254u);
  EXPECT_EQ(run_div(divider, 8, 100, 7).q, 14u);
  EXPECT_EQ(run_div(divider, 8, 100, 7).r, 2u);
}

TEST(Divider, StructureIsCleanDag) {
  const Netlist divider = build_divider(6);
  ValidateOptions options;
  options.enforce_sfq_fanout = false;
  const auto report = validate(divider, options);
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? "" : report.issues[0]);
}

}  // namespace
}  // namespace sfqpart
