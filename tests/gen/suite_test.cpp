// Suite registry checks: every Table I circuit builds, maps to legal SFQ,
// and lands in the size/bias/area band of the published row (our regenerated
// benchmarks substitute for the closed SPORT-lab suite; DESIGN.md sec. 4).
#include "gen/suite.h"

#include <gtest/gtest.h>

#include "netlist/stats.h"
#include "netlist/validate.h"

namespace sfqpart {
namespace {

TEST(Suite, HasAllThirteenCircuits) {
  EXPECT_EQ(benchmark_suite().size(), 13u);
  for (const char* name :
       {"ksa4", "ksa8", "ksa16", "ksa32", "mult4", "mult8", "id4", "id8",
        "c432", "c499", "c1355", "c1908", "c3540"}) {
    EXPECT_NE(find_benchmark(name), nullptr) << name;
  }
  EXPECT_EQ(find_benchmark("nope"), nullptr);
}

TEST(Suite, PaperRowsPopulated) {
  for (const SuiteEntry& entry : benchmark_suite()) {
    EXPECT_GT(entry.paper.gates, 0) << entry.name;
    EXPECT_GT(entry.paper.connections, entry.paper.gates / 2) << entry.name;
    EXPECT_GT(entry.paper.bias_ma, 0.0) << entry.name;
    EXPECT_GT(entry.paper.d2, entry.paper.d1) << entry.name;
    EXPECT_LE(entry.paper.d2, 1.0) << entry.name;
  }
}

class SuiteCircuit : public ::testing::TestWithParam<const char*> {};

TEST_P(SuiteCircuit, MapsToLegalSfq) {
  const Netlist mapped = build_mapped(GetParam());
  const auto report = validate(mapped);
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? "" : report.issues[0]);
}

TEST_P(SuiteCircuit, SizeInBandOfPaperRow) {
  const SuiteEntry* entry = find_benchmark(GetParam());
  ASSERT_NE(entry, nullptr);
  const Netlist mapped = build_mapped(*entry);
  const NetlistStats stats = compute_stats(mapped);
  // Regenerated circuits: same order of magnitude, within ~2x of the
  // published gate count (most are far closer; see EXPERIMENTS.md).
  EXPECT_GT(stats.num_gates, entry->paper.gates / 2) << stats.num_gates;
  EXPECT_LT(stats.num_gates, entry->paper.gates * 2) << stats.num_gates;
  EXPECT_GT(stats.num_connections, stats.num_gates);  // |E| > G in Table I
  // Per-gate averages calibrated to the paper's implied values.
  EXPECT_NEAR(stats.avg_bias_ma(), 0.87, 0.12);
  EXPECT_NEAR(stats.avg_area_um2(), 4900.0, 700.0);
}

INSTANTIATE_TEST_SUITE_P(All, SuiteCircuit,
                         ::testing::Values("ksa4", "ksa8", "ksa16", "ksa32",
                                           "mult4", "mult8", "id4", "id8", "c432",
                                           "c499", "c1355", "c1908", "c3540"),
                         [](const auto& info) { return std::string(info.param); });

TEST(Suite, ExtraCircuitsResolveButStayOutOfTheTable) {
  EXPECT_EQ(extra_circuits().size(), 3u);
  for (const SuiteEntry& entry : extra_circuits()) {
    EXPECT_NE(find_benchmark(entry.name), nullptr) << entry.name;
    EXPECT_EQ(entry.paper.gates, 0) << entry.name;  // not a Table I row
    // Absent from the paper suite itself.
    for (const SuiteEntry& paper_entry : benchmark_suite()) {
      EXPECT_NE(paper_entry.name, entry.name);
    }
  }
  const Netlist alu = build_mapped("alu8");
  EXPECT_TRUE(validate(alu).ok());
  EXPECT_GT(alu.num_partitionable_gates(), 100);
}

TEST(Suite, BuildMappedByNameMatchesByEntry) {
  const Netlist by_name = build_mapped("ksa4");
  const Netlist by_entry = build_mapped(*find_benchmark("ksa4"));
  EXPECT_EQ(by_name.num_gates(), by_entry.num_gates());
}

}  // namespace
}  // namespace sfqpart
