#include "gen/random_logic.h"

#include <gtest/gtest.h>

#include "netlist/stats.h"
#include "netlist/validate.h"

namespace sfqpart {
namespace {

RandomLogicParams params(int gates, std::uint64_t seed) {
  RandomLogicParams p;
  p.name = "rl";
  p.num_inputs = 16;
  p.num_outputs = 8;
  p.num_gates = gates;
  p.seed = seed;
  return p;
}

TEST(RandomLogic, DeterministicForSeed) {
  const Netlist a = build_random_logic(params(200, 5));
  const Netlist b = build_random_logic(params(200, 5));
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (GateId g = 0; g < a.num_gates(); ++g) {
    EXPECT_EQ(a.gate(g).name, b.gate(g).name);
  }
  EXPECT_EQ(a.unique_edges().size(), b.unique_edges().size());
}

TEST(RandomLogic, DifferentSeedsDiffer) {
  const Netlist a = build_random_logic(params(200, 5));
  const Netlist b = build_random_logic(params(200, 6));
  EXPECT_NE(a.unique_edges(), b.unique_edges());
}

TEST(RandomLogic, RespectsIoCounts) {
  const Netlist netlist = build_random_logic(params(300, 7));
  const NetlistStats stats = compute_stats(netlist);
  EXPECT_EQ(stats.by_kind.at(CellKind::kInput), 16);
  EXPECT_LE(stats.by_kind.at(CellKind::kOutput), 8);
  EXPECT_GE(stats.by_kind.at(CellKind::kOutput), 1);
}

TEST(RandomLogic, GateCountNearTarget) {
  const Netlist netlist = build_random_logic(params(400, 11));
  // Consolidation OR trees fold every dangling cone into the outputs,
  // adding up to ~40% on top of the requested operator count.
  EXPECT_GE(netlist.num_partitionable_gates(), 400);
  EXPECT_LE(netlist.num_partitionable_gates(), 600);
}

TEST(RandomLogic, StructureIsCleanDag) {
  const Netlist netlist = build_random_logic(params(250, 13));
  ValidateOptions options;
  options.enforce_sfq_fanout = false;
  const auto report = validate(netlist, options);
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? "" : report.issues[0]);
}

class RandomLogicSeeds : public ::testing::TestWithParam<int> {};

TEST_P(RandomLogicSeeds, DepthStaysLogarithmic) {
  const Netlist netlist =
      build_random_logic(params(500, static_cast<std::uint64_t>(GetParam())));
  const NetlistStats stats = compute_stats(netlist);
  // e*ln(500) ~ 17; allow generous slack but reject linear-depth chains.
  EXPECT_LT(stats.logic_depth, 60);
  EXPECT_GT(stats.logic_depth, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLogicSeeds, ::testing::Range(1, 6));

}  // namespace
}  // namespace sfqpart
