#include "gen/scaled.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "netlist/stats.h"
#include "netlist/validate.h"

namespace sfqpart {
namespace {

TEST(Scaled, HitsTheGateTargetClosely) {
  ScaledParams params;
  params.num_gates = 50000;
  const Netlist netlist = build_scaled(params);
  const int gates = netlist.num_partitionable_gates();
  EXPECT_GT(gates, 45000);
  EXPECT_LT(gates, 55000);
}

TEST(Scaled, IsValidSfq) {
  ScaledParams params;
  params.num_gates = 20000;
  const Netlist netlist = build_scaled(params);
  const ValidationReport report = validate(netlist);
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? "" : report.issues[0]);
}

TEST(Scaled, RespectsTheFanoutCap) {
  ScaledParams params;
  params.num_gates = 20000;
  params.max_fanout = 3;
  const Netlist netlist = build_scaled(params);
  // Physical fanout is what validate() checks (single sink per output);
  // the logical cap bounds splitter-chain length, i.e. the number of
  // consecutive kSplit gates reachable from any non-split driver is at
  // most max_fanout - 1.
  std::vector<int> chain(static_cast<std::size_t>(netlist.num_gates()), 0);
  int longest = 0;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.cell_of(g).kind != CellKind::kSplit) continue;
    const NetId in = netlist.input_net(g, 0);
    ASSERT_NE(in, kInvalidNet);
    const GateId driver = netlist.net(in).driver.gate;
    if (netlist.cell_of(driver).kind == CellKind::kSplit) {
      chain[static_cast<std::size_t>(g)] = chain[static_cast<std::size_t>(driver)] + 1;
    } else {
      chain[static_cast<std::size_t>(g)] = 1;
    }
    if (chain[static_cast<std::size_t>(g)] > longest) {
      longest = chain[static_cast<std::size_t>(g)];
    }
  }
  EXPECT_LE(longest, params.max_fanout - 1);
}

TEST(Scaled, DeterministicInSeed) {
  ScaledParams params;
  params.num_gates = 10000;
  params.seed = 42;
  const Netlist a = build_scaled(params);
  const Netlist b = build_scaled(params);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  EXPECT_EQ(a.unique_edges(), b.unique_edges());

  params.seed = 43;
  const Netlist c = build_scaled(params);
  EXPECT_NE(a.unique_edges(), c.unique_edges());
}

TEST(Scaled, RentExponentShiftsIoAndLocality) {
  ScaledParams local;
  local.num_gates = 20000;
  local.rent_exponent = 0.45;
  ScaledParams global = local;
  global.rent_exponent = 0.85;
  const NetlistStats stats_local = compute_stats(build_scaled(local));
  const NetlistStats stats_global = compute_stats(build_scaled(global));
  // Higher Rent exponent: more I/O (k * G^p) ...
  EXPECT_GT(stats_global.num_io, stats_local.num_io);
  // ... and longer wires mean less reuse of the immediate neighborhood,
  // which shows up as a deeper circuit for the local variant (chains of
  // freshly created signals feed the next gate).
  EXPECT_GT(stats_local.logic_depth, stats_global.logic_depth);
}

TEST(Scaled, MixFollowsTheBufferFraction) {
  ScaledParams params;
  params.num_gates = 30000;
  params.buffer_fraction = 0.4;
  const NetlistStats stats = compute_stats(build_scaled(params));
  const auto jtl = stats.by_kind.find(CellKind::kJtl);
  const auto merge = stats.by_kind.find(CellKind::kMerge);
  ASSERT_NE(jtl, stats.by_kind.end());
  ASSERT_NE(merge, stats.by_kind.end());
  // JTL share of the sampled (non-fold) logic nodes ~ 0.4; folds add
  // merges, so allow a band.
  const double share =
      static_cast<double>(jtl->second) / (jtl->second + merge->second);
  EXPECT_GT(share, 0.25);
  EXPECT_LT(share, 0.45);
}

}  // namespace
}  // namespace sfqpart
