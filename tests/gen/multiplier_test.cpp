#include "gen/multiplier.h"

#include <gtest/gtest.h>

#include "gen/sim.h"
#include "netlist/stats.h"
#include "netlist/validate.h"
#include "util/rng.h"

namespace sfqpart {
namespace {

std::uint64_t run_mult(const Netlist& mult, int width, std::uint64_t a,
                       std::uint64_t b) {
  SignalValues in;
  set_word(in, "a", width, a);
  set_word(in, "b", width, b);
  const auto out = simulate(mult, in);
  return get_word(out, "p", 2 * width);
}

TEST(Multiplier, ExhaustiveWidth4) {
  const Netlist mult = build_multiplier(4);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      ASSERT_EQ(run_mult(mult, 4, a, b), a * b) << a << "*" << b;
    }
  }
}

class MultWidths : public ::testing::TestWithParam<int> {};

TEST_P(MultWidths, RandomVectorsMultiply) {
  const int width = GetParam();
  const Netlist mult = build_multiplier(width);
  const std::uint64_t mask = (1ULL << width) - 1;
  Rng rng(static_cast<std::uint64_t>(width) * 31);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t a = rng.next_u64() & mask;
    const std::uint64_t b = rng.next_u64() & mask;
    ASSERT_EQ(run_mult(mult, width, a, b), a * b);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultWidths, ::testing::Values(2, 3, 5, 8, 12),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(Multiplier, EdgeVectors) {
  const Netlist mult = build_multiplier(8);
  EXPECT_EQ(run_mult(mult, 8, 0, 200), 0u);
  EXPECT_EQ(run_mult(mult, 8, 255, 255), 65025u);
  EXPECT_EQ(run_mult(mult, 8, 1, 171), 171u);
  EXPECT_EQ(run_mult(mult, 8, 128, 2), 256u);
}

TEST(Multiplier, StructureIsCleanDag) {
  const Netlist mult = build_multiplier(8);
  ValidateOptions options;
  options.enforce_sfq_fanout = false;
  const auto report = validate(mult, options);
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? "" : report.issues[0]);
}

TEST(Multiplier, WallaceDepthIsLogarithmic) {
  // An 8x8 ripple array runs ~45 gate levels; Wallace rounds + the prefix
  // adder measure 24.
  const NetlistStats stats = compute_stats(build_multiplier(8));
  EXPECT_LT(stats.logic_depth, 30);
}

}  // namespace
}  // namespace sfqpart
