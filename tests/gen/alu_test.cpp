#include "gen/alu.h"

#include <gtest/gtest.h>

#include "gen/sim.h"
#include "netlist/validate.h"
#include "pulse/pulse_sim.h"
#include "sfq/mapper.h"
#include "util/rng.h"

namespace sfqpart {
namespace {

struct AluOut {
  std::uint64_t y;
  bool carry;
  bool zero;
};

AluOut run_alu(const Netlist& alu, int width, std::uint64_t a, std::uint64_t b,
               int op) {
  SignalValues in;
  set_word(in, "a", width, a);
  set_word(in, "b", width, b);
  set_word(in, "op", 2, static_cast<std::uint64_t>(op));
  const auto out = simulate(alu, in);
  return AluOut{get_word(out, "y", width), out.at("carry"), out.at("zero")};
}

std::uint64_t reference(int width, std::uint64_t a, std::uint64_t b, int op) {
  const std::uint64_t mask = (1ULL << width) - 1;
  switch (op) {
    case 0: return (a + b) & mask;
    case 1: return (a - b) & mask;
    case 2: return a & b;
    default: return a ^ b;
  }
}

TEST(Alu, ExhaustiveWidth3AllOps) {
  const Netlist alu = build_alu(3);
  for (int op = 0; op < 4; ++op) {
    for (std::uint64_t a = 0; a < 8; ++a) {
      for (std::uint64_t b = 0; b < 8; ++b) {
        const AluOut out = run_alu(alu, 3, a, b, op);
        ASSERT_EQ(out.y, reference(3, a, b, op))
            << "op " << op << ": " << a << "," << b;
        ASSERT_EQ(out.zero, out.y == 0);
      }
    }
  }
}

class AluOps : public ::testing::TestWithParam<int> {};

TEST_P(AluOps, RandomVectorsWidth8) {
  const int op = GetParam();
  const Netlist alu = build_alu(8);
  Rng rng(static_cast<std::uint64_t>(op) + 50);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t a = rng.uniform_index(256);
    const std::uint64_t b = rng.uniform_index(256);
    const AluOut out = run_alu(alu, 8, a, b, op);
    ASSERT_EQ(out.y, reference(8, a, b, op)) << a << " op" << op << " " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, AluOps, ::testing::Range(0, 4),
                         [](const auto& info) {
                           return "op" + std::to_string(info.param);
                         });

TEST(Alu, CarryFlagSemantics) {
  const Netlist alu = build_alu(8);
  EXPECT_TRUE(run_alu(alu, 8, 200, 100, 0).carry);   // 300 overflows
  EXPECT_FALSE(run_alu(alu, 8, 10, 20, 0).carry);
  // SUB: carry out means no borrow (a >= b).
  EXPECT_TRUE(run_alu(alu, 8, 30, 20, 1).carry);
  EXPECT_FALSE(run_alu(alu, 8, 20, 30, 1).carry);
  // Logic ops report no carry.
  EXPECT_FALSE(run_alu(alu, 8, 255, 255, 2).carry);
}

TEST(Alu, MapsToLegalSfqAndKeepsFunction) {
  const Netlist structural = build_alu(4);
  const Netlist mapped = map_to_sfq(structural);
  const auto report = validate(mapped);
  ASSERT_TRUE(report.ok()) << (report.issues.empty() ? "" : report.issues[0]);
  Rng rng(9);
  for (int trial = 0; trial < 25; ++trial) {
    SignalValues in;
    set_word(in, "a", 4, rng.uniform_index(16));
    set_word(in, "b", 4, rng.uniform_index(16));
    set_word(in, "op", 2, rng.uniform_index(4));
    EXPECT_EQ(simulate(structural, in), simulate(mapped, in));
  }
}

TEST(Alu, WavePipelinesAtFullRate) {
  // The whole point of the SFQ mapping: the ALU accepts one op per cycle.
  const Netlist mapped = map_to_sfq(build_alu(4));
  PulseSimulator sim(mapped);
  Rng rng(17);
  const int words = 16;
  PulseTrains inputs;
  std::vector<std::uint64_t> as, bs, ops;
  const int cycles = words + sim.latency();
  auto make_train = [&](const std::string& name, int bits,
                        std::vector<std::uint64_t>& values, std::uint64_t range) {
    for (int bit = 0; bit < bits; ++bit) {
      inputs[name + "[" + std::to_string(bit) + "]"] =
          std::vector<bool>(static_cast<std::size_t>(cycles), false);
    }
    for (int i = 0; i < words; ++i) {
      const std::uint64_t value = rng.uniform_index(range);
      values.push_back(value);
      for (int bit = 0; bit < bits; ++bit) {
        inputs[name + "[" + std::to_string(bit) + "]"][static_cast<std::size_t>(i)] =
            ((value >> bit) & 1) != 0;
      }
    }
  };
  make_train("a", 4, as, 16);
  make_train("b", 4, bs, 16);
  make_train("op", 2, ops, 4);
  const PulseTrains out = sim.run(inputs, cycles);
  for (int i = 0; i < words; ++i) {
    std::uint64_t y = 0;
    for (int bit = 0; bit < 4; ++bit) {
      if (out.at("y[" + std::to_string(bit) + "]")[static_cast<std::size_t>(i + sim.latency())]) {
        y |= 1ULL << bit;
      }
    }
    EXPECT_EQ(y, reference(4, as[static_cast<std::size_t>(i)],
                           bs[static_cast<std::size_t>(i)],
                           static_cast<int>(ops[static_cast<std::size_t>(i)])))
        << "word " << i;
  }
}

}  // namespace
}  // namespace sfqpart
