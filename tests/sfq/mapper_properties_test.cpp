// Structural accounting properties of the SFQ mapping pipeline, checked
// across the suite: splitter counts follow exactly from pre-legalization
// fanout, and mapped circuits obey the SFQ interconnect discipline.
#include <gtest/gtest.h>

#include "gen/suite.h"
#include "netlist/stats.h"
#include "sfq/balance.h"
#include "sfq/mapper.h"

namespace sfqpart {
namespace {

class MapperProperties : public ::testing::TestWithParam<const char*> {};

TEST_P(MapperProperties, SplitterCountEqualsExcessFanout) {
  const SuiteEntry* entry = find_benchmark(GetParam());
  ASSERT_NE(entry, nullptr);
  const Netlist structural = entry->build_structural();

  // Balanced-but-unlegalized netlist: each output pin driving s sinks
  // needs exactly s-1 splitters.
  const Netlist balanced = insert_path_balancing(structural);
  int expected_splitters = 0;
  for (NetId n = 0; n < balanced.num_nets(); ++n) {
    const int sinks = static_cast<int>(balanced.net(n).sinks.size());
    if (sinks > 1) expected_splitters += sinks - 1;
  }

  const Netlist mapped = build_mapped(*entry);
  const NetlistStats stats = compute_stats(mapped);
  EXPECT_EQ(stats.by_kind.at(CellKind::kSplit), expected_splitters) << GetParam();
}

TEST_P(MapperProperties, EveryNetHasExactlyOneSink) {
  const Netlist mapped = build_mapped(GetParam());
  for (NetId n = 0; n < mapped.num_nets(); ++n) {
    EXPECT_EQ(mapped.net(n).sinks.size(), 1u)
        << GetParam() << " net " << mapped.net(n).name;
  }
}

TEST_P(MapperProperties, StageDepthsAlignedAtEveryMultiInputGate) {
  const Netlist mapped = build_mapped(GetParam());
  const std::vector<int> depth = stage_depths(mapped);
  for (GateId g = 0; g < mapped.num_gates(); ++g) {
    const Cell& cell = mapped.cell_of(g);
    if (cell.num_inputs < 2) continue;
    if (!(cell.is_clocked() || cell.kind == CellKind::kMerge)) continue;
    int first = -1;
    for (int pin = 0; pin < cell.num_inputs; ++pin) {
      const NetId net = mapped.input_net(g, pin);
      ASSERT_NE(net, kInvalidNet);
      const int d = depth[static_cast<std::size_t>(mapped.net(net).driver.gate)];
      if (first < 0) {
        first = d;
      } else {
        ASSERT_EQ(d, first) << GetParam() << " gate " << mapped.gate(g).name;
      }
    }
  }
}

TEST_P(MapperProperties, AllPrimaryOutputsAtEqualDepth) {
  const Netlist mapped = build_mapped(GetParam());
  const std::vector<int> depth = stage_depths(mapped);
  int po_depth = -1;
  for (GateId g = 0; g < mapped.num_gates(); ++g) {
    if (mapped.cell_of(g).kind != CellKind::kOutput) continue;
    if (po_depth < 0) {
      po_depth = depth[static_cast<std::size_t>(g)];
    } else {
      EXPECT_EQ(depth[static_cast<std::size_t>(g)], po_depth)
          << GetParam() << " " << mapped.gate(g).name;
    }
  }
  EXPECT_GE(po_depth, 1);
}

INSTANTIATE_TEST_SUITE_P(Circuits, MapperProperties,
                         ::testing::Values("ksa4", "ksa8", "mult4", "id4", "c499"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace sfqpart
