#include "sfq/fanout.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "netlist/validate.h"

namespace sfqpart {
namespace {

// One driver DFF fanning out to `n` sink DFFs (physical library, so the
// input netlist deliberately violates the SFQ fanout rule).
Netlist fan(int n) {
  Netlist netlist(&default_sfq_library(), "fan");
  const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId d = netlist.add_gate_of_kind("drv", CellKind::kDff);
  netlist.connect(in, 0, d, 0);
  for (int i = 0; i < n; ++i) {
    const GateId sink = netlist.add_gate_of_kind("s" + std::to_string(i), CellKind::kDff);
    netlist.connect(d, 0, sink, 0);
    const GateId out =
        netlist.add_gate_of_kind("pin:y" + std::to_string(i), CellKind::kOutput);
    netlist.connect(sink, 0, out, 0);
  }
  return netlist;
}

int count_splitters(const Netlist& netlist) {
  int count = 0;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.cell_of(g).kind == CellKind::kSplit) ++count;
  }
  return count;
}

TEST(Fanout, SingleSinkUntouched) {
  const Netlist legal = legalize_fanout(fan(1));
  EXPECT_EQ(count_splitters(legal), 0);
  EXPECT_TRUE(validate(legal).ok());
}

TEST(Fanout, FanoutTwoNeedsOneSplitter) {
  const Netlist legal = legalize_fanout(fan(2));
  EXPECT_EQ(count_splitters(legal), 1);
  EXPECT_TRUE(validate(legal).ok());
}

class FanoutTree : public ::testing::TestWithParam<int> {};

TEST_P(FanoutTree, NMinusOneSplittersAndLegal) {
  const int n = GetParam();
  const Netlist legal = legalize_fanout(fan(n));
  // A binary splitter tree over n leaves has exactly n-1 internal nodes.
  EXPECT_EQ(count_splitters(legal), n - 1);
  const auto report = validate(legal);
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? "" : report.issues[0]);
  // Original gates keep their ids (copied first).
  EXPECT_EQ(legal.gate(1).name, "drv");
}

INSTANTIATE_TEST_SUITE_P(Widths, FanoutTree, ::testing::Values(3, 4, 5, 8, 17, 64));

TEST(Fanout, TreeDepthIsLogarithmic) {
  const Netlist legal = legalize_fanout(fan(64));
  // Longest in->sink path: drv + ceil(log2(64)) splitters + sink + pins.
  // Depth in gates (see stats): in, drv, 6 splitters, sink, out = 10.
  int max_depth = 0;
  std::vector<int> depth(static_cast<std::size_t>(legal.num_gates()), 1);
  for (const GateId g : legal.topological_order()) {
    const Cell& cell = legal.cell_of(g);
    for (int pin = 0; pin < cell.num_outputs; ++pin) {
      const NetId net = legal.output_net(g, pin);
      if (net == kInvalidNet) continue;
      for (const PinRef& sink : legal.net(net).sinks) {
        depth[static_cast<std::size_t>(sink.gate)] =
            std::max(depth[static_cast<std::size_t>(sink.gate)],
                     depth[static_cast<std::size_t>(g)] + 1);
      }
    }
  }
  for (const int d : depth) max_depth = std::max(max_depth, d);
  EXPECT_EQ(max_depth, 10);
}

TEST(Fanout, ClockSinksRouteThroughConnectClock) {
  Netlist netlist(&default_sfq_library(), "clkfan");
  const GateId src = netlist.add_gate_of_kind("pin:clk", CellKind::kInput);
  std::vector<GateId> dffs;
  const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  GateId prev = in;
  for (int i = 0; i < 3; ++i) {
    const GateId d = netlist.add_gate_of_kind("d" + std::to_string(i), CellKind::kDff);
    netlist.connect(prev, 0, d, 0);
    netlist.connect_clock(src, 0, d);
    dffs.push_back(d);
    prev = d;
  }
  netlist.connect(prev, 0, netlist.add_gate_of_kind("pin:y", CellKind::kOutput), 0);

  const Netlist legal = legalize_fanout(netlist);
  EXPECT_EQ(count_splitters(legal), 2);
  for (const GateId d : dffs) {
    const GateId h = legal.find_gate(netlist.gate(d).name);
    EXPECT_NE(legal.clock_net(h), kInvalidNet);
  }
  EXPECT_TRUE(validate(legal).ok());
}

}  // namespace
}  // namespace sfqpart
