#include "sfq/clocktree.h"

#include <gtest/gtest.h>

#include "netlist/validate.h"
#include "sfq/fanout.h"

namespace sfqpart {
namespace {

Netlist pipeline(int stages) {
  Netlist netlist(&default_sfq_library(), "pipe");
  GateId prev = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  for (int i = 0; i < stages; ++i) {
    const GateId d = netlist.add_gate_of_kind("d" + std::to_string(i), CellKind::kDff);
    netlist.connect(prev, 0, d, 0);
    prev = d;
  }
  netlist.connect(prev, 0, netlist.add_gate_of_kind("pin:y", CellKind::kOutput), 0);
  return netlist;
}

TEST(ClockTree, EveryClockedGateGetsAClock) {
  const Netlist clocked = insert_clock_tree(pipeline(5));
  int clocked_gates = 0;
  for (GateId g = 0; g < clocked.num_gates(); ++g) {
    if (!clocked.cell_of(g).is_clocked()) continue;
    ++clocked_gates;
    EXPECT_NE(clocked.clock_net(g), kInvalidNet) << clocked.gate(g).name;
  }
  EXPECT_EQ(clocked_gates, 5);
  EXPECT_NE(clocked.find_gate("pin:clk"), kInvalidGate);
}

TEST(ClockTree, NoClockedGatesNoSource) {
  Netlist netlist(&default_sfq_library(), "async");
  const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId j = netlist.add_gate_of_kind("j", CellKind::kJtl);
  netlist.connect(in, 0, j, 0);
  netlist.connect(j, 0, netlist.add_gate_of_kind("pin:y", CellKind::kOutput), 0);
  const Netlist result = insert_clock_tree(netlist);
  EXPECT_EQ(result.find_gate("pin:clk"), kInvalidGate);
  EXPECT_EQ(result.num_gates(), netlist.num_gates());
}

TEST(ClockTree, ExistingClocksPreserved) {
  Netlist netlist(&default_sfq_library(), "partial");
  const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId my_clk = netlist.add_gate_of_kind("pin:myclk", CellKind::kInput);
  const GateId d0 = netlist.add_gate_of_kind("d0", CellKind::kDff);
  const GateId d1 = netlist.add_gate_of_kind("d1", CellKind::kDff);
  netlist.connect(in, 0, d0, 0);
  netlist.connect(d0, 0, d1, 0);
  netlist.connect(d1, 0, netlist.add_gate_of_kind("pin:y", CellKind::kOutput), 0);
  netlist.connect_clock(my_clk, 0, d0);

  const Netlist result = insert_clock_tree(netlist);
  const GateId rd0 = result.find_gate("d0");
  const GateId rd1 = result.find_gate("d1");
  // d0 keeps its clock; only d1 hangs off the new source.
  EXPECT_EQ(result.net(result.clock_net(rd0)).driver.gate, result.find_gate("pin:myclk"));
  EXPECT_EQ(result.net(result.clock_net(rd1)).driver.gate, result.find_gate("pin:clk"));
}

TEST(ClockTree, LegalizesIntoSplitterTree) {
  // clock source fanning to 8 DFFs -> 7 splitters after legalization, and
  // the result passes full validation including the clock requirement.
  const Netlist legal = legalize_fanout(insert_clock_tree(pipeline(8)));
  int splitters = 0;
  for (GateId g = 0; g < legal.num_gates(); ++g) {
    if (legal.cell_of(g).kind == CellKind::kSplit) ++splitters;
  }
  EXPECT_EQ(splitters, 7);
  ValidateOptions strict;
  strict.require_clocks = true;
  const auto report = validate(legal, strict);
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? "" : report.issues[0]);
}

}  // namespace
}  // namespace sfqpart
