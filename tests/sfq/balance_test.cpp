#include "sfq/balance.h"

#include <gtest/gtest.h>

namespace sfqpart {
namespace {

int count_kind(const Netlist& netlist, CellKind kind) {
  int count = 0;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (netlist.cell_of(g).kind == kind) ++count;
  }
  return count;
}

// Verifies the core invariant: every aligned-input gate sees fan-ins of
// equal stage depth.
void expect_balanced(const Netlist& netlist) {
  const std::vector<int> depth = stage_depths(netlist);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const Cell& cell = netlist.cell_of(g);
    if (!(cell.is_clocked() || cell.kind == CellKind::kMerge)) continue;
    if (cell.num_inputs < 2) continue;
    int first = -1;
    for (int pin = 0; pin < cell.num_inputs; ++pin) {
      const NetId net = netlist.input_net(g, pin);
      ASSERT_NE(net, kInvalidNet);
      const int d = depth[static_cast<std::size_t>(netlist.net(net).driver.gate)];
      if (first < 0) {
        first = d;
      } else {
        EXPECT_EQ(d, first) << "gate " << netlist.gate(g).name;
      }
    }
  }
}

TEST(StageDepths, CountClockedStagesOnly) {
  Netlist netlist(&default_sfq_library(), "depths");
  const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId d0 = netlist.add_gate_of_kind("d0", CellKind::kDff);
  const GateId j = netlist.add_gate_of_kind("j", CellKind::kJtl);
  const GateId d1 = netlist.add_gate_of_kind("d1", CellKind::kDff);
  netlist.connect(in, 0, d0, 0);
  netlist.connect(d0, 0, j, 0);
  netlist.connect(j, 0, d1, 0);
  const auto depth = stage_depths(netlist);
  EXPECT_EQ(depth[static_cast<std::size_t>(in)], 0);
  EXPECT_EQ(depth[static_cast<std::size_t>(d0)], 1);
  EXPECT_EQ(depth[static_cast<std::size_t>(j)], 1);  // unclocked: pass-through
  EXPECT_EQ(depth[static_cast<std::size_t>(d1)], 2);
}

TEST(Balance, InsertsDffsOnLaggingInput) {
  // AND of a 2-stage path and a 0-stage path needs 2 balancing DFFs.
  Netlist netlist(&structural_library(), "lag");
  const GateId a = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId b = netlist.add_gate_of_kind("pin:b", CellKind::kInput);
  const GateId d0 = netlist.add_gate_of_kind("d0", CellKind::kDff);
  const GateId d1 = netlist.add_gate_of_kind("d1", CellKind::kDff);
  const GateId g = netlist.add_gate_of_kind("g", CellKind::kAnd2);
  const GateId y = netlist.add_gate_of_kind("pin:y", CellKind::kOutput);
  netlist.connect(a, 0, d0, 0);
  netlist.connect(d0, 0, d1, 0);
  netlist.connect(d1, 0, g, 0);
  netlist.connect(b, 0, g, 1);
  netlist.connect(g, 0, y, 0);

  const Netlist balanced = insert_path_balancing(netlist);
  EXPECT_EQ(count_kind(balanced, CellKind::kDff), 4);  // d0, d1 + 2 inserted
  expect_balanced(balanced);
}

TEST(Balance, AlreadyBalancedUntouched) {
  Netlist netlist(&structural_library(), "ok");
  const GateId a = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId b = netlist.add_gate_of_kind("pin:b", CellKind::kInput);
  const GateId g = netlist.add_gate_of_kind("g", CellKind::kXor2);
  const GateId y = netlist.add_gate_of_kind("pin:y", CellKind::kOutput);
  netlist.connect(a, 0, g, 0);
  netlist.connect(b, 0, g, 1);
  netlist.connect(g, 0, y, 0);
  const Netlist balanced = insert_path_balancing(netlist);
  EXPECT_EQ(balanced.num_gates(), netlist.num_gates());
}

TEST(Balance, OutputBalancingPadsShallowOutputs) {
  // Two outputs at depths 1 and 3: with balance_outputs the shallow one
  // gets 2 DFFs; without it, none.
  auto build = [] {
    Netlist netlist(&structural_library(), "po");
    const GateId a = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
    const GateId d0 = netlist.add_gate_of_kind("d0", CellKind::kDff);
    const GateId d1 = netlist.add_gate_of_kind("d1", CellKind::kDff);
    const GateId d2 = netlist.add_gate_of_kind("d2", CellKind::kDff);
    const GateId da = netlist.add_gate_of_kind("da", CellKind::kDff);
    netlist.connect(a, 0, d0, 0);
    netlist.connect(d0, 0, d1, 0);
    netlist.connect(d1, 0, d2, 0);
    netlist.connect(a, 0, da, 0);
    netlist.connect(d2, 0, netlist.add_gate_of_kind("pin:y0", CellKind::kOutput), 0);
    netlist.connect(da, 0, netlist.add_gate_of_kind("pin:y1", CellKind::kOutput), 0);
    return netlist;
  };
  BalanceOptions with;
  with.balance_outputs = true;
  EXPECT_EQ(count_kind(insert_path_balancing(build(), with), CellKind::kDff), 6);
  BalanceOptions without;
  without.balance_outputs = false;
  EXPECT_EQ(count_kind(insert_path_balancing(build(), without), CellKind::kDff), 4);
}

TEST(Balance, SharedChainPrefixAcrossSinks) {
  // One driver feeding two gates at lags 1 and 2 shares the first DFF.
  Netlist netlist(&structural_library(), "share");
  const GateId a = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId b = netlist.add_gate_of_kind("pin:b", CellKind::kInput);
  const GateId p1 = netlist.add_gate_of_kind("p1", CellKind::kDff);
  const GateId p2 = netlist.add_gate_of_kind("p2", CellKind::kDff);
  const GateId q1 = netlist.add_gate_of_kind("q1", CellKind::kDff);
  // b at depth 0 feeds g1 (needs depth 1 partner) and g2 (needs depth 2).
  const GateId g1 = netlist.add_gate_of_kind("g1", CellKind::kAnd2);
  const GateId g2 = netlist.add_gate_of_kind("g2", CellKind::kAnd2);
  netlist.connect(a, 0, p1, 0);
  netlist.connect(p1, 0, q1, 0);  // depth 2 into g2
  netlist.connect(a, 0, p2, 0);   // depth 1 into g1
  netlist.connect(p2, 0, g1, 0);
  netlist.connect(b, 0, g1, 1);   // lag 1
  netlist.connect(q1, 0, g2, 0);
  netlist.connect(b, 0, g2, 1);   // lag 2, shares the first DFF
  netlist.connect(g1, 0, netlist.add_gate_of_kind("pin:y0", CellKind::kOutput), 0);
  netlist.connect(g2, 0, netlist.add_gate_of_kind("pin:y1", CellKind::kOutput), 0);

  BalanceOptions options;
  options.balance_outputs = false;
  const Netlist balanced = insert_path_balancing(netlist, options);
  // Without sharing: 3 inserted DFFs; with the shared prefix: 2.
  EXPECT_EQ(count_kind(balanced, CellKind::kDff), 3 + 2);
  expect_balanced(balanced);
}

TEST(Balance, MergerInputsAligned) {
  Netlist netlist(&default_sfq_library(), "merge");
  const GateId a = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
  const GateId b = netlist.add_gate_of_kind("pin:b", CellKind::kInput);
  const GateId d = netlist.add_gate_of_kind("d", CellKind::kDff);
  const GateId m = netlist.add_gate_of_kind("m", CellKind::kMerge);
  netlist.connect(a, 0, d, 0);
  netlist.connect(d, 0, m, 0);
  netlist.connect(b, 0, m, 1);  // lag 1 vs the DFF path
  netlist.connect(m, 0, netlist.add_gate_of_kind("pin:y", CellKind::kOutput), 0);
  const Netlist balanced = insert_path_balancing(netlist);
  EXPECT_EQ(count_kind(balanced, CellKind::kDff), 2);
  expect_balanced(balanced);
}

}  // namespace
}  // namespace sfqpart
