// End-to-end mapper checks: mapped netlists are legal SFQ and functionally
// identical to the structural input (the simulator treats DFFs and
// splitters as transparent, so the steady-state word-level function must
// survive mapping unchanged).
#include "sfq/mapper.h"

#include <gtest/gtest.h>

#include "gen/ksa.h"
#include "gen/multiplier.h"
#include "gen/sim.h"
#include "netlist/stats.h"
#include "netlist/validate.h"
#include "util/rng.h"

namespace sfqpart {
namespace {

TEST(Mapper, MappedNetlistIsLegalSfq) {
  const Netlist mapped = map_to_sfq(build_ksa(4));
  const auto report = validate(mapped);
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? "" : report.issues[0]);
  for (GateId g = 0; g < mapped.num_gates(); ++g) {
    EXPECT_TRUE(mapped.cell_of(g).physical);
  }
}

TEST(Mapper, PreservesGateNames) {
  const Netlist structural = build_ksa(4);
  const Netlist mapped = map_to_sfq(structural);
  for (GateId g = 0; g < structural.num_gates(); ++g) {
    EXPECT_NE(mapped.find_gate(structural.gate(g).name), kInvalidGate)
        << structural.gate(g).name;
  }
}

TEST(Mapper, FunctionPreservedThroughMapping) {
  const Netlist structural = build_ksa(8);
  const Netlist mapped = map_to_sfq(structural);
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = rng.uniform_index(256);
    const auto b = rng.uniform_index(256);
    SignalValues in;
    set_word(in, "a", 8, a);
    set_word(in, "b", 8, b);
    const auto out_structural = simulate(structural, in);
    const auto out_mapped = simulate(mapped, in);
    EXPECT_EQ(out_structural, out_mapped) << a << "+" << b;
    EXPECT_EQ(get_word(out_mapped, "s", 8), (a + b) & 0xff);
  }
}

TEST(Mapper, BalancingCanBeDisabled) {
  SfqMapperOptions no_balance;
  no_balance.balance_paths = false;
  const Netlist structural = build_ksa(8);
  const int with = map_to_sfq(structural).num_gates();
  const int without = map_to_sfq(structural, no_balance).num_gates();
  EXPECT_GT(with, without);  // balancing DFFs are a large share of the area
}

TEST(Mapper, ClockTreeOptionAddsClockNetwork) {
  SfqMapperOptions with_clock;
  with_clock.insert_clock_tree = true;
  const Netlist mapped = map_to_sfq(build_ksa(4), with_clock);
  ValidateOptions strict;
  strict.require_clocks = true;
  const auto report = validate(mapped, strict);
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? "" : report.issues[0]);

  // Clock network is excluded by default (DESIGN.md: Table I counts the
  // data network), so the default mapping has no clock source.
  const Netlist plain = map_to_sfq(build_ksa(4));
  EXPECT_EQ(plain.find_gate("pin:clk"), kInvalidGate);
}

TEST(Mapper, MappedMixIsDominatedByDffsAndSplitters) {
  const NetlistStats stats = compute_stats(map_to_sfq(build_multiplier(8)));
  const int dffs = stats.by_kind.count(CellKind::kDff) ? stats.by_kind.at(CellKind::kDff) : 0;
  const int splits = stats.by_kind.count(CellKind::kSplit) ? stats.by_kind.at(CellKind::kSplit) : 0;
  // SFQ-mapped circuits typically spend 40-70% of gates on pipelining and
  // fanout (paper section II); sanity-check the mapper reproduces that.
  EXPECT_GT(dffs + splits, stats.num_gates * 2 / 5);
  EXPECT_LT(dffs + splits, stats.num_gates * 4 / 5);
}

}  // namespace
}  // namespace sfqpart
