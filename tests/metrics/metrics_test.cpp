#include "metrics/partition_metrics.h"

#include <gtest/gtest.h>

#include "metrics/report.h"

namespace sfqpart {
namespace {

// Four DFFs in a chain plus one splitter; hand-checkable numbers.
struct Fixture {
  Netlist netlist{&default_sfq_library(), "hand"};
  Partition partition;

  Fixture() {
    const GateId in = netlist.add_gate_of_kind("pin:a", CellKind::kInput);
    GateId prev = in;
    for (int i = 0; i < 4; ++i) {
      const GateId d = netlist.add_gate_of_kind("d" + std::to_string(i), CellKind::kDff);
      netlist.connect(prev, 0, d, 0);
      prev = d;
    }
    netlist.connect(prev, 0, netlist.add_gate_of_kind("pin:y", CellKind::kOutput), 0);
    partition.num_planes = 3;
    // d0,d1 -> plane 0; d2 -> plane 1; d3 -> plane 2. IO unassigned.
    partition.plane_of = {kUnassignedPlane, 0, 0, 1, 2, kUnassignedPlane};
  }
};

TEST(Metrics, DistanceHistogram) {
  Fixture f;
  const PartitionMetrics m = compute_metrics(f.netlist, f.partition);
  EXPECT_EQ(m.num_gates, 4);
  EXPECT_EQ(m.num_connections, 3);  // d0-d1, d1-d2, d2-d3
  EXPECT_EQ(m.distance_histogram, (std::vector<int>{1, 2, 0}));
  EXPECT_NEAR(m.frac_within(0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.frac_within(1), 1.0, 1e-12);
  EXPECT_NEAR(m.frac_within(2), 1.0, 1e-12);
  // Queries beyond the last bucket saturate.
  EXPECT_NEAR(m.frac_within(99), 1.0, 1e-12);
}

TEST(Metrics, BiasAndAreaAggregates) {
  Fixture f;
  const PartitionMetrics m = compute_metrics(f.netlist, f.partition);
  const CellLibrary& lib = default_sfq_library();
  const double dff_bias = lib.cell(*lib.find_kind(CellKind::kDff)).bias_ma;
  const double dff_area = lib.cell(*lib.find_kind(CellKind::kDff)).area_um2;
  EXPECT_DOUBLE_EQ(m.plane_bias_ma[0], 2 * dff_bias);
  EXPECT_DOUBLE_EQ(m.plane_bias_ma[1], dff_bias);
  EXPECT_DOUBLE_EQ(m.bmax_ma, 2 * dff_bias);
  EXPECT_DOUBLE_EQ(m.total_bias_ma, 4 * dff_bias);
  // I_comp = sum(Bmax - Bk) = (0 + 1 + 1) * dff_bias.
  EXPECT_DOUBLE_EQ(m.icomp_ma, 2 * dff_bias);
  EXPECT_NEAR(m.icomp_frac(), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(m.amax_um2, 2 * dff_area);
  EXPECT_NEAR(m.afs_frac(), 0.5, 1e-12);
  EXPECT_EQ(m.plane_gates, (std::vector<int>{2, 1, 1}));
}

TEST(Metrics, IdentityKBmaxMinusBcir) {
  Fixture f;
  const PartitionMetrics m = compute_metrics(f.netlist, f.partition);
  EXPECT_NEAR(m.icomp_ma, m.num_planes * m.bmax_ma - m.total_bias_ma, 1e-9);
  EXPECT_NEAR(m.afs_um2, m.num_planes * m.amax_um2 - m.total_area_um2, 1e-9);
}

TEST(Metrics, HalfKColumn) {
  PartitionMetrics m;
  m.num_planes = 5;
  EXPECT_EQ(m.half_k(), 2);
  m.num_planes = 8;
  EXPECT_EQ(m.half_k(), 4);
}

TEST(Metrics, NoConnectionsMeansFullLocality) {
  Netlist netlist(&default_sfq_library(), "iso");
  netlist.add_gate_of_kind("d", CellKind::kDff);
  Partition partition;
  partition.num_planes = 2;
  partition.plane_of = {0};
  const PartitionMetrics m = compute_metrics(netlist, partition);
  EXPECT_EQ(m.num_connections, 0);
  EXPECT_DOUBLE_EQ(m.frac_within(1), 1.0);
}

TEST(Report, MentionsEveryPlaneAndMetric) {
  Fixture f;
  const PartitionMetrics m = compute_metrics(f.netlist, f.partition);
  const std::string text = format_partition_report(f.netlist, f.partition, m);
  EXPECT_NE(text.find("K=3"), std::string::npos);
  EXPECT_NE(text.find("B_max"), std::string::npos);
  EXPECT_NE(text.find("A_FS"), std::string::npos);
  EXPECT_NE(text.find("d = 1"), std::string::npos);
}

TEST(Averager, MeanOfStream) {
  Averager avg;
  EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
  avg.add(1.0);
  avg.add(2.0);
  avg.add(6.0);
  EXPECT_DOUBLE_EQ(avg.mean(), 3.0);
  EXPECT_EQ(avg.count(), 3);
}

}  // namespace
}  // namespace sfqpart
