// The paper's evaluation claims, as executable checks. These are the
// trends EXPERIMENTS.md reports; encoding them as tests ensures future
// changes to the optimizer, mapper, or library cannot silently break the
// reproduction.
#include <cmath>

#include <gtest/gtest.h>

#include "core/kres_search.h"
#include "core/solver.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"

namespace sfqpart {
namespace {

PartitionMetrics metrics_at_k(const Netlist& netlist, int k) {
  SolverConfig options;
  options.num_planes = k;
  return compute_metrics(netlist, Solver(options).run(netlist).value().partition);
}

// Table II's headline trends on KSA4: locality falls and B_max falls as K
// grows; at least 75% of connections stay within floor(K/2) planes
// (section V quotes 92.1% on average).
TEST(PaperTrends, TableIIKsa4Sweep) {
  const Netlist netlist = build_mapped("ksa4");
  double prev_d1 = 1.1;
  double d1_first = 0.0;
  double d1_last = 0.0;
  double bmax_first = 0.0;
  double bmax_last = 0.0;
  double dhalf_sum = 0.0;
  int rising_d1 = 0;
  for (int k = 5; k <= 10; ++k) {
    const PartitionMetrics m = metrics_at_k(netlist, k);
    const double d1 = m.frac_within(1);
    if (k == 5) {
      d1_first = d1;
      bmax_first = m.bmax_ma;
    }
    if (k == 10) {
      d1_last = d1;
      bmax_last = m.bmax_ma;
    }
    if (d1 > prev_d1 + 1e-9) ++rising_d1;  // small non-monotonic noise allowed
    prev_d1 = d1;
    dhalf_sum += m.frac_within(m.half_k());
    EXPECT_GT(m.frac_within(m.half_k()), 0.75) << "K=" << k;
  }
  EXPECT_LT(d1_last, d1_first - 0.2);   // paper: 74.6% -> 38.1%
  EXPECT_LT(bmax_last, bmax_first);     // paper: 17.50 -> 9.69 mA
  EXPECT_LE(rising_d1, 2);
  EXPECT_GT(dhalf_sum / 6.0, 0.85);     // paper average: 92.1%
}

// Table I's regime on a suite cross-section: d<=1 around two thirds or
// better, d<=2 above 85%, compensation and free space in single digits to
// low teens (the section V averages are 65.1/87.7/8.0/7.7%).
TEST(PaperTrends, TableIRegime) {
  for (const char* name : {"ksa8", "mult8", "c1355"}) {
    const Netlist netlist = build_mapped(name);
    const PartitionMetrics m = metrics_at_k(netlist, 5);
    EXPECT_GT(m.frac_within(1), 0.60) << name;
    EXPECT_GT(m.frac_within(2), 0.85) << name;
    EXPECT_LT(m.icomp_frac(), 0.15) << name;
    EXPECT_LT(m.afs_frac(), 0.15) << name;
  }
}

// Table III's trend: K_res >= K_LB, with the gap growing with circuit
// complexity (paper: 3/3 for ksa8 up to 32/50 for c3540).
TEST(PaperTrends, TableIIIGapGrowsWithComplexity) {
  KresOptions options;
  options.bias_limit_ma = 100.0;
  options.base.restarts = 2;

  const Netlist small = build_mapped("ksa8");
  const KresResult small_result = find_min_planes(small, options).value();
  ASSERT_TRUE(small_result.found);
  EXPECT_LE(small_result.k_res - small_result.k_lb, 1);

  const Netlist large = build_mapped("c1908");
  const KresResult large_result = find_min_planes(large, options).value();
  ASSERT_TRUE(large_result.found);
  EXPECT_GE(large_result.k_res, large_result.k_lb);
  EXPECT_GE(large_result.k_res - large_result.k_lb,
            small_result.k_res - small_result.k_lb);
  EXPECT_LE(large_result.bmax_ma, 100.0);
}

// Section V's bias-line claim: recycling collapses tens of bias pads into
// one (31 -> 1 in the paper's 2.5 A example).
TEST(PaperTrends, BiasLineSaving) {
  const Netlist netlist = build_mapped("id8");  // B_cir ~ 4 A
  KresOptions options;
  options.bias_limit_ma = 100.0;
  options.base.restarts = 1;
  const KresResult result = find_min_planes(netlist, options).value();
  ASSERT_TRUE(result.found);
  const int parallel_pads =
      static_cast<int>(std::ceil(netlist.total_bias_ma() / 100.0));
  EXPECT_GE(parallel_pads, 30);  // tens of lines without recycling
  EXPECT_LE(result.bmax_ma, 100.0);  // one pad with recycling
}

}  // namespace
}  // namespace sfqpart
