// Full-flow integration: generate -> map -> (DEF round trip) -> partition
// -> metrics -> recycling plan, checking cross-module consistency.
#include <gtest/gtest.h>

#include "core/kres_search.h"
#include "core/solver.h"
#include "def/def_parser.h"
#include "def/def_writer.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"
#include "netlist/validate.h"
#include "recycling/bias_plan.h"
#include "recycling/coupling.h"

namespace sfqpart {
namespace {

class EndToEnd : public ::testing::TestWithParam<const char*> {};

TEST_P(EndToEnd, PartitionQualityAndConsistency) {
  const Netlist netlist = build_mapped(GetParam());
  ASSERT_TRUE(validate(netlist).ok());

  SolverConfig options;
  options.num_planes = 5;
  const SolverResult result = Solver(options).run(netlist).value();
  const PartitionMetrics metrics = compute_metrics(netlist, result.partition);

  // Quality floor: clearly structured output, not a random scatter (random
  // round-robin yields ~52% at K=5; the paper's averages are 65-75%).
  EXPECT_GT(metrics.frac_within(1), 0.55) << GetParam();
  EXPECT_GT(metrics.frac_within(2), 0.80) << GetParam();
  EXPECT_LT(metrics.icomp_frac(), 0.20) << GetParam();
  EXPECT_LT(metrics.afs_frac(), 0.20) << GetParam();

  // The discrete cost the partitioner reports is the cost of the returned
  // partition (cross-check through an independent CostModel).
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);
  const CostModel model(problem, options.weights);
  std::vector<int> labels;
  for (const GateId g : problem.gate_ids) {
    labels.push_back(result.partition.plane(g));
  }
  EXPECT_NEAR(model.evaluate_discrete(labels).total(options.weights),
              result.discrete_total, 1e-9);

  // Recycling plan agrees with the metrics.
  const BiasPlan plan = make_bias_plan(netlist, result.partition);
  EXPECT_NEAR(plan.supply_ma, metrics.bmax_ma, 1e-9);
  EXPECT_NEAR(plan.total_dummy_ma, metrics.icomp_ma, 1e-9);

  // Coupling pair total equals the distance-weighted link sum; every
  // intra-plane connection is free.
  const CouplingReport coupling = plan_coupling(netlist, result.partition);
  EXPECT_GT(coupling.total_pairs, 0);
  EXPECT_GE(coupling.total_pairs, coupling.cross_connections);
}

INSTANTIATE_TEST_SUITE_P(Circuits, EndToEnd,
                         ::testing::Values("ksa8", "mult4", "id4", "c499"),
                         [](const auto& info) { return std::string(info.param); });

TEST(EndToEnd, DefRoundTripPreservesPartitionMetrics) {
  // Partitioning the written-and-reparsed DEF must give identical metrics
  // for the same seed: the parsed netlist is structurally identical.
  const Netlist original = build_mapped("ksa4");
  auto design = def::parse_def(def::write_def(original));
  ASSERT_TRUE(design.is_ok());
  auto reparsed = def::def_to_netlist(*design, original.library());
  ASSERT_TRUE(reparsed.is_ok());

  SolverConfig options;
  options.seed = 77;
  const PartitionMetrics a =
      compute_metrics(original, Solver(options).run(original).value().partition);
  const PartitionMetrics b =
      compute_metrics(*reparsed, Solver(options).run(*reparsed).value().partition);
  EXPECT_EQ(a.distance_histogram, b.distance_histogram);
  EXPECT_NEAR(a.bmax_ma, b.bmax_ma, 1e-9);
}

TEST(EndToEnd, KresFlowProducesUsableStack) {
  const Netlist netlist = build_mapped("mult4");  // B_cir ~ 220 mA
  KresOptions options;
  options.bias_limit_ma = 100.0;
  const KresResult kres = find_min_planes(netlist, options).value();
  ASSERT_TRUE(kres.found);
  const BiasPlan plan = make_bias_plan(netlist, kres.result.partition);
  EXPECT_LE(plan.supply_ma, 100.0);
  EXPECT_EQ(plan.pads_serial, 1);
  EXPECT_GE(plan.pads_saved(), 1);
}

}  // namespace
}  // namespace sfqpart
