// Cross-module consistency: quantities reported by independent modules
// (metrics, bias plan, power, coupling, timing, floorplan) must agree on
// the same partition -- these invariants catch unit mix-ups and silent
// drift between subsystems.
#include <gtest/gtest.h>

#include "core/solver.h"
#include "floorplan/floorplan.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"
#include "recycling/bias_plan.h"
#include "recycling/coupling.h"
#include "recycling/insertion.h"
#include "recycling/power.h"
#include "timing/timing.h"
#include "verilog/verilog_parser.h"
#include "verilog/verilog_writer.h"

namespace sfqpart {
namespace {

class FlowConsistency : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    netlist_ = build_mapped(GetParam());
    SolverConfig options;
    options.num_planes = 4;
    partition_ = Solver(options).run(netlist_).value().partition;
  }

  Netlist netlist_{&default_sfq_library()};
  Partition partition_;
};

TEST_P(FlowConsistency, MetricsBiasPlanAndPowerAgree) {
  const PartitionMetrics metrics = compute_metrics(netlist_, partition_);
  const BiasPlan plan = make_bias_plan(netlist_, partition_);
  const PowerReport power = analyze_power(netlist_, partition_);

  EXPECT_NEAR(plan.supply_ma, metrics.bmax_ma, 1e-9);
  EXPECT_NEAR(plan.total_bias_ma, metrics.total_bias_ma, 1e-9);
  EXPECT_NEAR(plan.total_dummy_ma, metrics.icomp_ma, 1e-9);
  EXPECT_NEAR(power.supply_current_ma, metrics.bmax_ma, 1e-9);
  EXPECT_NEAR(power.total_bias_ma, metrics.total_bias_ma, 1e-9);
  // Power overhead of the plan equals 1 + I_comp fraction.
  EXPECT_NEAR(plan.power_overhead(), 1.0 + metrics.icomp_frac(), 1e-9);
  // Dummy burn in uW equals dummy current times the rail, per plane count.
  EXPECT_NEAR(power.dummy_burn_uw,
              (4 * metrics.bmax_ma - metrics.total_bias_ma) * 2.5, 1e-6);
}

TEST_P(FlowConsistency, CouplingPlanMatchesDistanceHistogram) {
  const PartitionMetrics metrics = compute_metrics(netlist_, partition_);
  const CouplingReport coupling = plan_coupling(netlist_, partition_);
  // Boundary pair totals equal the distance-weighted link sum.
  int via_boundaries = 0;
  for (const int pairs : coupling.pairs_per_boundary) via_boundaries += pairs;
  EXPECT_EQ(via_boundaries, coupling.total_pairs);
  // Every unique cross edge appears as at least one directed link (nets
  // have one sink post-mapping, so the counts match exactly here).
  int cross_unique = 0;
  for (int d = 1; d < metrics.num_planes; ++d) {
    cross_unique += metrics.distance_histogram[static_cast<std::size_t>(d)];
  }
  EXPECT_EQ(coupling.cross_connections, cross_unique);
}

TEST_P(FlowConsistency, InsertionRealizesTheCouplingPlan) {
  const CouplingReport plan = plan_coupling(netlist_, partition_);
  const CouplingInsertion inserted = apply_coupling_insertion(netlist_, partition_);
  EXPECT_EQ(inserted.pairs_inserted, plan.total_pairs);
  EXPECT_EQ(inserted.netlist.num_gates(),
            netlist_.num_gates() + 2 * plan.total_pairs);
  double added = 0.0;
  for (const double b : inserted.added_bias_ma) added += b;
  const PartitionMetrics before = compute_metrics(netlist_, partition_);
  const PartitionMetrics after =
      compute_metrics(inserted.netlist, inserted.partition);
  EXPECT_NEAR(after.total_bias_ma, before.total_bias_ma + added, 1e-9);
}

TEST_P(FlowConsistency, WireAndCouplingDelaysOnlySlowTheClock) {
  const Floorplan floorplan = build_floorplan(netlist_, partition_);
  const double flat = analyze_timing(netlist_).min_period_ps;
  const double wired = analyze_timing(netlist_, {}, &floorplan).min_period_ps;
  const double full =
      analyze_timing(netlist_, {}, &floorplan, &partition_).min_period_ps;
  EXPECT_GE(wired, flat - 1e-9);
  EXPECT_GE(full, wired - 1e-9);
}

TEST_P(FlowConsistency, VerilogRoundTripPreservesPartitionMetrics) {
  auto module = parse_verilog(write_verilog(netlist_));
  ASSERT_TRUE(module.is_ok());
  auto reparsed = verilog_to_netlist(*module, netlist_.library());
  ASSERT_TRUE(reparsed.is_ok()) << reparsed.status().message();
  SolverConfig options;
  options.num_planes = 4;
  options.seed = 99;
  const PartitionMetrics a = compute_metrics(
      netlist_, Solver(options).run(netlist_).value().partition);
  const PartitionMetrics b = compute_metrics(
      *reparsed, Solver(options).run(*reparsed).value().partition);
  // Same seed on a structurally identical netlist: identical outcome.
  EXPECT_EQ(a.distance_histogram, b.distance_histogram);
  EXPECT_NEAR(a.bmax_ma, b.bmax_ma, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Circuits, FlowConsistency,
                         ::testing::Values("ksa8", "mult4", "id4"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace sfqpart
