#include "util/strings.h"

#include <gtest/gtest.h>

namespace sfqpart {
namespace {

TEST(Split, DropsEmptyFields) {
  EXPECT_EQ(split("a  b\tc"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("  leading and trailing  "),
            (std::vector<std::string>{"leading", "and", "trailing"}));
  EXPECT_TRUE(split("").empty());
  EXPECT_TRUE(split("   ").empty());
}

TEST(Split, CustomDelimiters) {
  EXPECT_EQ(split("a,b;c", ",;"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitKeepEmpty, PreservesEmptyFields) {
  EXPECT_EQ(split_keep_empty("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split_keep_empty(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split_keep_empty("", ','), (std::vector<std::string>{""}));
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\na b\r "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(CaseConversion, Works) {
  EXPECT_EQ(to_lower("MiXeD123"), "mixed123");
  EXPECT_EQ(to_upper("MiXeD123"), "MIXED123");
}

TEST(Affixes, StartsAndEndsWith) {
  EXPECT_TRUE(starts_with("COMPONENTS", "COMP"));
  EXPECT_FALSE(starts_with("COMP", "COMPONENTS"));
  EXPECT_TRUE(ends_with("netlist.def", ".def"));
  EXPECT_FALSE(ends_with("def", "netlist.def"));
}

TEST(ParseInt, StrictWholeField) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int("  8 "), 8);
  EXPECT_FALSE(parse_int("4x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("3.5").has_value());
}

TEST(ParseDouble, StrictWholeField) {
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3").value(), -1000.0);
  EXPECT_FALSE(parse_double("2.5mV").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(str_format("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(str_format("empty"), "empty");
}

}  // namespace
}  // namespace sfqpart
