#include "util/json.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace sfqpart {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json::null().dump(0), "null");
  EXPECT_EQ(Json::boolean(true).dump(0), "true");
  EXPECT_EQ(Json::boolean(false).dump(0), "false");
  EXPECT_EQ(Json::number(static_cast<long long>(42)).dump(0), "42");
  EXPECT_EQ(Json::number(2.5).dump(0), "2.5");
  EXPECT_EQ(Json::string("hi").dump(0), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json::string("a\"b\\c\nd\te").dump(0), "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(Json::string(std::string(1, '\x01')).dump(0), "\"\\u0001\"");
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(Json::number(std::numeric_limits<double>::infinity()).dump(0), "null");
  EXPECT_EQ(Json::number(std::nan("")).dump(0), "null");
}

TEST(Json, CompactArrayAndObject) {
  Json arr = Json::array();
  arr.append(Json::number(static_cast<long long>(1)))
      .append(Json::string("x"));
  EXPECT_EQ(arr.dump(0), "[1,\"x\"]");

  Json obj = Json::object();
  obj.set("a", Json::number(static_cast<long long>(1)))
      .set("b", Json::boolean(false));
  EXPECT_EQ(obj.dump(0), "{\"a\":1,\"b\":false}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().dump(2), "[]");
  EXPECT_EQ(Json::object().dump(2), "{}");
}

TEST(Json, SetOverwritesExistingKey) {
  Json obj = Json::object();
  obj.set("k", Json::number(static_cast<long long>(1)));
  obj.set("k", Json::number(static_cast<long long>(2)));
  EXPECT_EQ(obj.dump(0), "{\"k\":2}");
}

TEST(Json, PrettyNesting) {
  Json obj = Json::object();
  Json inner = Json::array();
  inner.append(Json::number(static_cast<long long>(7)));
  obj.set("xs", std::move(inner));
  EXPECT_EQ(obj.dump(2), "{\n  \"xs\": [\n    7\n  ]\n}");
}

TEST(Json, KeysKeepInsertionOrder) {
  Json obj = Json::object();
  obj.set("z", Json::null());
  obj.set("a", Json::null());
  const std::string out = obj.dump(0);
  EXPECT_LT(out.find("\"z\""), out.find("\"a\""));
}

}  // namespace
}  // namespace sfqpart
