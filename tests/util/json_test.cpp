#include "util/json.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace sfqpart {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json::null().dump(0), "null");
  EXPECT_EQ(Json::boolean(true).dump(0), "true");
  EXPECT_EQ(Json::boolean(false).dump(0), "false");
  EXPECT_EQ(Json::number(static_cast<long long>(42)).dump(0), "42");
  EXPECT_EQ(Json::number(2.5).dump(0), "2.5");
  EXPECT_EQ(Json::string("hi").dump(0), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json::string("a\"b\\c\nd\te").dump(0), "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(Json::string(std::string(1, '\x01')).dump(0), "\"\\u0001\"");
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(Json::number(std::numeric_limits<double>::infinity()).dump(0), "null");
  EXPECT_EQ(Json::number(std::nan("")).dump(0), "null");
}

TEST(Json, CompactArrayAndObject) {
  Json arr = Json::array();
  arr.append(Json::number(static_cast<long long>(1)))
      .append(Json::string("x"));
  EXPECT_EQ(arr.dump(0), "[1,\"x\"]");

  Json obj = Json::object();
  obj.set("a", Json::number(static_cast<long long>(1)))
      .set("b", Json::boolean(false));
  EXPECT_EQ(obj.dump(0), "{\"a\":1,\"b\":false}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().dump(2), "[]");
  EXPECT_EQ(Json::object().dump(2), "{}");
}

TEST(Json, SetOverwritesExistingKey) {
  Json obj = Json::object();
  obj.set("k", Json::number(static_cast<long long>(1)));
  obj.set("k", Json::number(static_cast<long long>(2)));
  EXPECT_EQ(obj.dump(0), "{\"k\":2}");
}

TEST(Json, PrettyNesting) {
  Json obj = Json::object();
  Json inner = Json::array();
  inner.append(Json::number(static_cast<long long>(7)));
  obj.set("xs", std::move(inner));
  EXPECT_EQ(obj.dump(2), "{\n  \"xs\": [\n    7\n  ]\n}");
}

TEST(Json, KeysKeepInsertionOrder) {
  Json obj = Json::object();
  obj.set("z", Json::null());
  obj.set("a", Json::null());
  const std::string out = obj.dump(0);
  EXPECT_LT(out.find("\"z\""), out.find("\"a\""));
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool(true));
  EXPECT_EQ(Json::parse("42")->as_int(), 42);
  EXPECT_EQ(Json::parse("-7")->as_int(), -7);
  EXPECT_EQ(Json::parse("2.5")->as_number(), 2.5);
  EXPECT_EQ(Json::parse("1e-3")->as_number(), 1e-3);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParse, IntegersKeepIntegerKind) {
  EXPECT_EQ(Json::parse("42")->dump(0), "42");
  EXPECT_EQ(Json::parse("2.5")->dump(0), "2.5");
}

TEST(JsonParse, ContainersAndAccessors) {
  const auto parsed = Json::parse(R"({"a": [1, 2.5, "x"], "b": {"c": true}})");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  const Json& doc = *parsed;
  ASSERT_NE(doc.find("a"), nullptr);
  EXPECT_EQ(doc.find("a")->size(), 3u);
  EXPECT_EQ(doc.find("a")->at(0).as_int(), 1);
  EXPECT_EQ(doc.find("a")->at(2).as_string(), "x");
  EXPECT_TRUE(doc.find("b")->find("c")->as_bool());
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_EQ(doc.size(), 2u);
  EXPECT_EQ(doc.key_at(0), "a");
  EXPECT_EQ(doc.key_at(1), "b");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\nd\te")")->as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(Json::parse(R"("Aé")")->as_string(), "A\xc3\xa9");
  EXPECT_EQ(Json::parse(R"("\u0001")")->as_string(), std::string(1, '\x01'));
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("").is_ok());
  EXPECT_FALSE(Json::parse("{").is_ok());
  EXPECT_FALSE(Json::parse("[1,]").is_ok());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").is_ok());
  EXPECT_FALSE(Json::parse("\"unterminated").is_ok());
  EXPECT_FALSE(Json::parse("nul").is_ok());
  EXPECT_FALSE(Json::parse("1 2").is_ok());  // trailing content
  EXPECT_FALSE(Json::parse("{\"a\": 1} x").is_ok());
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_FALSE(Json::parse(deep).is_ok());
}

TEST(JsonParse, DepthLimitIsExactAtTheBoundary) {
  const auto nested = [](int levels) {
    std::string text;
    for (int i = 0; i < levels; ++i) text += '[';
    text += '1';
    for (int i = 0; i < levels; ++i) text += ']';
    return text;
  };
  EXPECT_TRUE(Json::parse(nested(Json::kMaxParseDepth)).is_ok());
  const auto too_deep = Json::parse(nested(Json::kMaxParseDepth + 1));
  ASSERT_FALSE(too_deep.is_ok());
  EXPECT_NE(too_deep.status().message().find("nesting too deep"),
            std::string::npos);

  // Mixed object/array nesting counts against the same limit.
  std::string mixed;
  for (int i = 0; i < Json::kMaxParseDepth + 1; ++i) mixed += "{\"k\":[";
  EXPECT_FALSE(Json::parse(mixed).is_ok());
}

TEST(JsonParse, EveryStrictPrefixOfADocumentFails) {
  // An object document is only balanced at the final brace, so every
  // truncation point must be rejected (simulates a cut-off daemon line).
  const std::string doc = R"({"a": [1, 2.5, "x\n"], "b": {"c": true}})";
  ASSERT_TRUE(Json::parse(doc).is_ok());
  for (std::size_t len = 0; len < doc.size(); ++len) {
    EXPECT_FALSE(Json::parse(doc.substr(0, len)).is_ok())
        << "prefix of length " << len << " unexpectedly parsed";
  }
}

TEST(JsonParse, DuplicateKeysLastOneWins) {
  const auto parsed = Json::parse(R"({"k": 1, "z": 0, "k": 2})");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  EXPECT_EQ(parsed->size(), 2u);  // the duplicate replaced, not appended
  ASSERT_NE(parsed->find("k"), nullptr);
  EXPECT_EQ(parsed->find("k")->as_int(), 2);
  // Replacement keeps the first occurrence's insertion position.
  EXPECT_EQ(parsed->key_at(0), "k");
  EXPECT_EQ(parsed->key_at(1), "z");
}

TEST(JsonParse, RejectsNumbersThatOverflowDouble) {
  for (const char* text : {"1e999", "-1e999", "1e309", "-2e308"}) {
    const auto parsed = Json::parse(text);
    ASSERT_FALSE(parsed.is_ok()) << text;
    EXPECT_NE(parsed.status().message().find("number out of range"),
              std::string::npos)
        << parsed.status().message();
  }
  // Underflow is representable (as zero) and stays accepted.
  EXPECT_EQ(Json::parse("1e-999")->as_number(), 0.0);
  // Integers past long long degrade to a finite double, not an error.
  const auto big = Json::parse("123456789012345678901234567890");
  ASSERT_TRUE(big.is_ok());
  EXPECT_TRUE(std::isfinite(big->as_number()));
}

TEST(JsonParse, DumpParseDumpIsIdentity) {
  Json obj = Json::object();
  Json arr = Json::array();
  arr.append(Json::number(static_cast<long long>(1)))
      .append(Json::number(0.125))
      .append(Json::string("x\ny"))
      .append(Json::null());
  obj.set("values", std::move(arr));
  obj.set("flag", Json::boolean(true));
  for (const int indent : {0, 2}) {
    const std::string once = obj.dump(indent);
    const auto parsed = Json::parse(once);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
    EXPECT_EQ(parsed->dump(indent), once);
  }
}

}  // namespace
}  // namespace sfqpart
