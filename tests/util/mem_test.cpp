#include "util/mem.h"

// peak_rss_mb() regression: the reading must be in megabytes on every
// platform. The historical bug hardcoded the Linux kilobyte
// interpretation of ru_maxrss, which over-reports by 1024x on macOS
// (where ru_maxrss is bytes); the plausibility band below fails for
// either misinterpretation without depending on the absolute footprint
// of the test binary.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

namespace sfqpart {
namespace {

TEST(Mem, PeakRssIsPlausibleMegabytes) {
  const double peak = peak_rss_mb();
  // A running gtest binary holds at least ~1 MB resident; a reading
  // below that means the divisor is ~1000x too large (KB treated as
  // bytes, which reports a few kilobytes), above 64 GB means it is
  // ~1000x too small (bytes treated as KB).
  EXPECT_GT(peak, 1.0);
  EXPECT_LT(peak, 64.0 * 1024.0);
}

TEST(Mem, PeakRssIsMonotonicAndTracksAllocation) {
  const double before = peak_rss_mb();
  // Touch 64 MB so the peak provably covers it (ru_maxrss is a high
  //-water mark: earlier tests in this binary may already have peaked
  // higher, so only >= is guaranteed).
  constexpr std::size_t kBytes = 64u * 1024u * 1024u;
  std::vector<unsigned char> block(kBytes, 1);
  for (std::size_t i = 0; i < kBytes; i += 4096) block[i] = 2;
  const double after = peak_rss_mb();
  EXPECT_GE(after, before);
  EXPECT_GT(block[kBytes - 1], 0);  // keep the allocation alive
}

}  // namespace
}  // namespace sfqpart
