#include "util/options.h"

#include <gtest/gtest.h>

namespace sfqpart {
namespace {

OptionsParser make_parser() {
  OptionsParser parser("test");
  parser.add_flag("verbose", false, "verbosity");
  parser.add_int("planes", 5, "plane count");
  parser.add_double("margin", 1e-4, "stop margin");
  parser.add_string("circuit", "ksa4", "circuit name");
  return parser;
}

TEST(Options, DefaultsApply) {
  OptionsParser parser = make_parser();
  ASSERT_TRUE(parser.parse(0, nullptr).is_ok());
  EXPECT_FALSE(parser.get_flag("verbose"));
  EXPECT_EQ(parser.get_int("planes"), 5);
  EXPECT_DOUBLE_EQ(parser.get_double("margin"), 1e-4);
  EXPECT_EQ(parser.get_string("circuit"), "ksa4");
}

TEST(Options, EqualsSyntax) {
  OptionsParser parser = make_parser();
  const char* argv[] = {"--planes=7", "--circuit=c432", "--margin=0.01"};
  ASSERT_TRUE(parser.parse(3, argv).is_ok());
  EXPECT_EQ(parser.get_int("planes"), 7);
  EXPECT_EQ(parser.get_string("circuit"), "c432");
  EXPECT_DOUBLE_EQ(parser.get_double("margin"), 0.01);
}

TEST(Options, SpaceSyntax) {
  OptionsParser parser = make_parser();
  const char* argv[] = {"--planes", "9"};
  ASSERT_TRUE(parser.parse(2, argv).is_ok());
  EXPECT_EQ(parser.get_int("planes"), 9);
}

TEST(Options, BareAndNegatedFlags) {
  OptionsParser parser = make_parser();
  const char* argv[] = {"--verbose"};
  ASSERT_TRUE(parser.parse(1, argv).is_ok());
  EXPECT_TRUE(parser.get_flag("verbose"));

  OptionsParser parser2 = make_parser();
  const char* argv2[] = {"--verbose", "--no-verbose"};
  ASSERT_TRUE(parser2.parse(2, argv2).is_ok());
  EXPECT_FALSE(parser2.get_flag("verbose"));
}

TEST(Options, PositionalCollected) {
  OptionsParser parser = make_parser();
  const char* argv[] = {"file1.def", "--planes=3", "file2.def"};
  ASSERT_TRUE(parser.parse(3, argv).is_ok());
  EXPECT_EQ(parser.positional(), (std::vector<std::string>{"file1.def", "file2.def"}));
}

TEST(Options, UnknownFlagRejected) {
  OptionsParser parser = make_parser();
  const char* argv[] = {"--typo=1"};
  EXPECT_FALSE(parser.parse(1, argv).is_ok());
}

TEST(Options, BadValuesRejected) {
  OptionsParser parser = make_parser();
  const char* argv[] = {"--planes=abc"};
  EXPECT_FALSE(parser.parse(1, argv).is_ok());

  OptionsParser parser2 = make_parser();
  const char* argv2[] = {"--margin=fast"};
  EXPECT_FALSE(parser2.parse(1, argv2).is_ok());

  OptionsParser parser3 = make_parser();
  const char* argv3[] = {"--planes"};
  EXPECT_FALSE(parser3.parse(1, argv3).is_ok());
}

TEST(Options, UsageListsAllFlags) {
  OptionsParser parser = make_parser();
  const std::string usage = parser.usage();
  for (const char* name : {"--verbose", "--planes", "--margin", "--circuit"}) {
    EXPECT_NE(usage.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace sfqpart
