#include "util/thread_pool.h"

#include <array>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sfqpart {
namespace {

// Forces the fork-join path: with this per-item estimate even a one-item
// call clears the adaptive serial cutoff, so the test exercises the
// region open/claim/join machinery instead of the inline fallback.
constexpr double kForceDispatch = 1e9;

TEST(ChunkCount, MatchesCeilDivision) {
  EXPECT_EQ(chunk_count(0, 4), 0u);
  EXPECT_EQ(chunk_count(1, 4), 1u);
  EXPECT_EQ(chunk_count(4, 4), 1u);
  EXPECT_EQ(chunk_count(5, 4), 2u);
  EXPECT_EQ(chunk_count(8, 4), 2u);
  EXPECT_EQ(chunk_count(9, 4), 3u);
  // Degenerate grain clamps to 1.
  EXPECT_EQ(chunk_count(3, 0), 3u);
}

TEST(ParallelChunks, CoversEveryIndexExactlyOnceWithoutPool) {
  std::vector<int> hits(103, 0);
  parallel_chunks(nullptr, hits.size(), 10,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) ++hits[i];
                  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelChunks, CoversEveryIndexExactlyOnceOnPool) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_chunks(
      &pool, hits.size(), 7,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
      },
      kForceDispatch);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelChunks, EmptyRangeRunsNothing) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  parallel_chunks(
      &pool, 0, 4,
      [&](std::size_t, std::size_t, std::size_t) { ++ran; }, kForceDispatch);
  parallel_chunks(nullptr, 0, 4,
                  [&](std::size_t, std::size_t, std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelChunks, GrainLargerThanRangeIsOneFullChunk) {
  ThreadPool pool(2);
  std::vector<std::array<std::size_t, 3>> spans;
  parallel_chunks(
      &pool, 5, 100,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        spans.push_back({chunk, begin, end});
      },
      kForceDispatch);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (std::array<std::size_t, 3>{0, 0, 5}));
}

TEST(ParallelChunks, SmallCallsRunInlineUnderTheSerialCutoff) {
  ThreadPool pool(4);
  // 100 items at the default few-ns estimate is far below the cutoff:
  // every chunk must run on the calling thread.
  const auto caller = std::this_thread::get_id();
  std::atomic<int> off_caller{0};
  parallel_chunks(&pool, 100, 10,
                  [&](std::size_t, std::size_t, std::size_t) {
                    if (std::this_thread::get_id() != caller) ++off_caller;
                  });
  EXPECT_EQ(off_caller.load(), 0);
}

TEST(ParallelChunks, ChunkBoundariesDependOnlyOnSizeAndGrain) {
  // The determinism contract: the (chunk, begin, end) triples are the same
  // whether the chunks run inline or on any pool.
  const auto collect = [](ThreadPool* pool) {
    std::vector<std::array<std::size_t, 3>> spans(chunk_count(23, 5));
    parallel_chunks(
        pool, 23, 5,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          spans[chunk] = {chunk, begin, end};
        },
        kForceDispatch);
    return spans;
  };
  ThreadPool two(2);
  ThreadPool eight(8);
  const auto inline_spans = collect(nullptr);
  EXPECT_EQ(inline_spans, collect(&two));
  EXPECT_EQ(inline_spans, collect(&eight));
  EXPECT_EQ(inline_spans.back()[2], 23u);
}

TEST(ParallelChunks, PropagatesTheFirstExceptionMidRegion) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(parallel_chunks(
                   &pool, 100, 1,
                   [&](std::size_t chunk, std::size_t, std::size_t) {
                     ++executed;
                     if (chunk == 13) throw std::runtime_error("boom");
                   },
                   kForceDispatch),
               std::runtime_error);
  // Every chunk still ran (the region drains before rethrowing), and the
  // pool is intact and reusable afterwards.
  EXPECT_EQ(executed.load(), 100);
  std::atomic<int> ran{0};
  parallel_chunks(
      &pool, 10, 1, [&](std::size_t, std::size_t, std::size_t) { ++ran; },
      kForceDispatch);
  EXPECT_EQ(ran.load(), 10);
}

TEST(ParallelChunks, ManyRegionStressLeavesNoLeaksOrDeadlocks) {
  ThreadPool pool(3);
  long long total = 0;
  for (int round = 0; round < 500; ++round) {
    std::vector<long long> partial(chunk_count(256, 16), 0);
    parallel_chunks(
        &pool, 256, 16,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            partial[chunk] += static_cast<long long>(i);
          }
        },
        kForceDispatch);
    total += std::accumulate(partial.begin(), partial.end(), 0LL);
  }
  EXPECT_EQ(total, 500LL * (255LL * 256LL / 2));
  EXPECT_EQ(pool.thread_count(), 3);
}

TEST(ParallelChunks, BackToBackRegionsWithGrowingChunkCountsStayIsolated) {
  // Regression stress for the stale-ticket race: after a small region's
  // ticket is exhausted, a straggler worker still holding its generation
  // races the next opener, which publishes a *larger* chunk count. Before
  // the close-time ticket invalidation in try_run_region, the straggler
  // could read the new chunks_, CAS the exhausted ticket, and run a
  // phantom chunk over torn region fields — corrupting the next region's
  // done_ count (early join or deadlock) and double-running indices.
  // Alternating 2-chunk and 256-chunk regions back to back maximizes
  // that window; run it under the tsan preset to make the race (were it
  // reintroduced) a deterministic failure instead of a rare hang.
  ThreadPool pool(7);
  for (int round = 0; round < 2000; ++round) {
    const std::size_t n = (round % 2 == 0) ? 4 : 512;
    std::vector<std::atomic<int>> hits(n);
    parallel_chunks(
        &pool, n, 2,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) ++hits[i];
        },
        kForceDispatch);
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(ParallelChunks, NestedCallsRunInlineInsteadOfDeadlocking) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  parallel_chunks(
      &pool, 8, 1,
      [&](std::size_t outer, std::size_t, std::size_t) {
        EXPECT_TRUE(ThreadPool::on_worker_thread());
        // Re-entering parallel_chunks from inside a region must take the
        // inline path (the region slot is busy: re-opening would deadlock).
        parallel_chunks(
            &pool, 8, 1,
            [&](std::size_t inner, std::size_t, std::size_t) {
              ++hits[outer * 8 + inner];
            },
            kForceDispatch);
      },
      kForceDispatch);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelChunks, ConcurrentOpenersFallBackInlineAndAllWorkRuns) {
  // Two plain threads race to open regions on one pool; the loser of the
  // region_open_ CAS runs inline. Either way every index is covered.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits_a(512);
  std::vector<std::atomic<int>> hits_b(512);
  const auto drive = [&pool](std::vector<std::atomic<int>>& hits) {
    for (int round = 0; round < 50; ++round) {
      parallel_chunks(
          &pool, hits.size(), 32,
          [&](std::size_t, std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) ++hits[i];
          },
          kForceDispatch);
    }
  };
  std::thread racer([&] { drive(hits_b); });
  drive(hits_a);
  racer.join();
  for (const auto& h : hits_a) EXPECT_EQ(h.load(), 50);
  for (const auto& h : hits_b) EXPECT_EQ(h.load(), 50);
}

TEST(ThreadPool, ReportsWorkerContext) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  EXPECT_GE(ThreadPool::hardware_concurrency(), 1);
  ThreadPool pool(2);
  EXPECT_EQ(pool.thread_count(), 2);
}

TEST(ChunkSlab, RowsAreZeroedPaddedAndAligned) {
  ChunkSlab slab;
  slab.reset(5, 3);
  for (std::size_t c = 0; c < 5; ++c) {
    const double* row = slab.chunk(c);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(row) % 64, 0u);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(row[i], 0.0);
  }
  // Rows never share a 64-byte line.
  EXPECT_GE(slab.chunk(1) - slab.chunk(0), 8);
  // Dirty it, reset smaller: still zeroed (reset reuses grown storage).
  slab.chunk(0)[0] = 42.0;
  slab.reset(2, 3);
  EXPECT_EQ(slab.chunk(0)[0], 0.0);
}

}  // namespace
}  // namespace sfqpart
