#include "util/thread_pool.h"

#include <array>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace sfqpart {
namespace {

TEST(ChunkCount, MatchesCeilDivision) {
  EXPECT_EQ(chunk_count(0, 4), 0u);
  EXPECT_EQ(chunk_count(1, 4), 1u);
  EXPECT_EQ(chunk_count(4, 4), 1u);
  EXPECT_EQ(chunk_count(5, 4), 2u);
  EXPECT_EQ(chunk_count(8, 4), 2u);
  EXPECT_EQ(chunk_count(9, 4), 3u);
  // Degenerate grain clamps to 1.
  EXPECT_EQ(chunk_count(3, 0), 3u);
}

TEST(ParallelChunks, CoversEveryIndexExactlyOnceWithoutPool) {
  std::vector<int> hits(103, 0);
  parallel_chunks(nullptr, hits.size(), 10,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) ++hits[i];
                  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelChunks, CoversEveryIndexExactlyOnceOnPool) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_chunks(&pool, hits.size(), 7,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) ++hits[i];
                  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelChunks, ChunkBoundariesDependOnlyOnSizeAndGrain) {
  // The determinism contract: the (chunk, begin, end) triples are the same
  // whether the chunks run inline or on any pool.
  const auto collect = [](ThreadPool* pool) {
    std::vector<std::array<std::size_t, 3>> spans(chunk_count(23, 5));
    parallel_chunks(pool, 23, 5,
                    [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                      spans[chunk] = {chunk, begin, end};
                    });
    return spans;
  };
  ThreadPool two(2);
  ThreadPool eight(8);
  const auto inline_spans = collect(nullptr);
  EXPECT_EQ(inline_spans, collect(&two));
  EXPECT_EQ(inline_spans, collect(&eight));
  EXPECT_EQ(inline_spans.back()[2], 23u);
}

TEST(ParallelChunks, PropagatesTheFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_chunks(&pool, 100, 1,
                      [&](std::size_t chunk, std::size_t, std::size_t) {
                        if (chunk == 13) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
  // All chunks drained; the pool is intact and reusable afterwards.
  std::atomic<int> ran{0};
  parallel_chunks(&pool, 10, 1,
                  [&](std::size_t, std::size_t, std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 10);
}

TEST(ParallelChunks, PoolIsReusableAcrossManyRounds) {
  ThreadPool pool(3);
  long long total = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<long long> partial(chunk_count(256, 16), 0);
    parallel_chunks(&pool, 256, 16,
                    [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        partial[chunk] += static_cast<long long>(i);
                      }
                    });
    total += std::accumulate(partial.begin(), partial.end(), 0LL);
  }
  EXPECT_EQ(total, 50LL * (255LL * 256LL / 2));
}

TEST(ParallelChunks, NestedCallsRunInlineInsteadOfDeadlocking) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  parallel_chunks(&pool, 8, 1, [&](std::size_t outer, std::size_t, std::size_t) {
    EXPECT_TRUE(ThreadPool::on_worker_thread());
    // Re-entering parallel_chunks from a worker must not queue (the two
    // workers are both busy with outer chunks: queueing would deadlock).
    parallel_chunks(&pool, 8, 1,
                    [&](std::size_t inner, std::size_t, std::size_t) {
                      ++hits[outer * 8 + inner];
                    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleWorkerRunsSubmittedTasksInFifoOrder) {
  std::vector<int> order;
  std::mutex mutex;
  std::condition_variable done;
  int remaining = 20;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&, i] {
        std::lock_guard<std::mutex> lock(mutex);
        order.push_back(i);
        if (--remaining == 0) done.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(mutex);
    done.wait(lock, [&] { return remaining == 0; });
  }
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] { ++ran; });
    }
  }  // ~ThreadPool joins after the queue is empty
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ReportsWorkerContext) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  EXPECT_GE(ThreadPool::hardware_concurrency(), 1);
  ThreadPool pool(2);
  EXPECT_EQ(pool.thread_count(), 2);
}

}  // namespace
}  // namespace sfqpart
