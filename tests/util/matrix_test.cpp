#include "util/matrix.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "util/status.h"

namespace sfqpart {
namespace {

TEST(Matrix, ShapeAndFill) {
  Matrix m(3, 4, 1.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_DOUBLE_EQ(m(2, 3), 1.5);
  m.fill(0.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, RowViewMutates) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
  EXPECT_DOUBLE_EQ(m(0, 2), 0.0);
}

TEST(Matrix, FlatIsStridedRowMajor) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  // Rows are padded to the SIMD row alignment: row r starts at r*stride
  // in the flat storage and the padding lanes stay zero.
  EXPECT_EQ(m.stride(), Matrix::kRowAlignDoubles);
  const auto flat = m.flat();
  ASSERT_EQ(flat.size(), 2 * m.stride());
  EXPECT_DOUBLE_EQ(flat[1], 2);
  EXPECT_DOUBLE_EQ(flat[m.stride()], 3);
  EXPECT_DOUBLE_EQ(flat[m.stride() + 1], 4);
  for (std::size_t c = m.cols(); c < m.stride(); ++c) {
    EXPECT_DOUBLE_EQ(flat[c], 0.0);
    EXPECT_DOUBLE_EQ(flat[m.stride() + c], 0.0);
  }
}

TEST(Matrix, StrideRoundsUpToAlignment) {
  EXPECT_EQ(Matrix(1, 1).stride(), 8u);
  EXPECT_EQ(Matrix(1, 8).stride(), 8u);
  EXPECT_EQ(Matrix(1, 9).stride(), 16u);
  EXPECT_EQ(Matrix(0, 0).stride(), 0u);
  // 64-byte base alignment for full-vector row loads.
  Matrix m(3, 5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.flat().data()) % 64, 0u);
}

TEST(Matrix, EqualityAndEmpty) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 1.0);
  EXPECT_EQ(a, b);
  b(1, 1) = 2.0;
  EXPECT_NE(a, b);
  EXPECT_TRUE(Matrix().empty());
}

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_TRUE(static_cast<bool>(status));
  EXPECT_EQ(status.message(), "");
}

TEST(Status, ErrorCarriesMessage) {
  Status status = Status::error("bad thing");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.message(), "bad thing");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> result = Status::error("nope");
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().message(), "nope");
}

TEST(StatusOr, MoveOut) {
  StatusOr<std::string> result = std::string("payload");
  const std::string value = std::move(result).value();
  EXPECT_EQ(value, "payload");
}

}  // namespace
}  // namespace sfqpart
