#include "util/table.h"

#include <gtest/gtest.h>

namespace sfqpart {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"Circuit", "G"});
  table.add_row({"ksa4", "93"});
  table.add_row({"c3540", "3792"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| Circuit | G    |"), std::string::npos);
  EXPECT_NE(out.find("| ksa4    | 93   |"), std::string::npos);
  EXPECT_NE(out.find("| c3540   | 3792 |"), std::string::npos);
  // Rules: top, under header, bottom.
  int rules = 0;
  std::size_t line_start = 0;
  while (line_start < out.size()) {
    if (out[line_start] == '+') ++rules;
    line_start = out.find('\n', line_start) + 1;
  }
  EXPECT_EQ(rules, 3);
}

TEST(TablePrinter, SeparatorBeforeAverageRow) {
  TablePrinter table({"x"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"AVG"});
  const std::string out = table.to_string();
  // 4 rules: top, header, before AVG, bottom.
  int rules = 0;
  std::size_t line_start = 0;
  while (line_start < out.size()) {
    if (out[line_start] == '+') ++rules;
    line_start = out.find('\n', line_start) + 1;
  }
  EXPECT_EQ(rules, 4);  // each rule line has two '+' for one column
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter table({"a", "b"});
  table.add_row({"only"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| only |"), std::string::npos);
}

TEST(FmtDouble, FixedDigits) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 4), "2.0000");
}

TEST(FmtPercent, FractionToPercent) {
  EXPECT_EQ(fmt_percent(0.746), "74.6%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
  EXPECT_EQ(fmt_percent(0.0924, 2), "9.24%");
}

}  // namespace
}  // namespace sfqpart
