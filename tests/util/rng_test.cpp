#include "util/rng.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace sfqpart {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.uniform();
    ASSERT_GE(value, 0.0);
    ASSERT_LT(value, 1.0);
    sum += value;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.uniform(-2.5, 3.5);
    ASSERT_GE(value, -2.5);
    ASSERT_LT(value, 3.5);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t value = rng.uniform_index(7);
    ASSERT_LT(value, 7u);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexOfOneIsZero) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int value = rng.uniform_int(-3, 3);
    ASSERT_GE(value, -3);
    ASSERT_LE(value, 3);
    saw_lo |= value == -3;
    saw_hi |= value == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double value = rng.normal();
    sum += value;
    sum_sq += value * value;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> values(50);
  std::iota(values.begin(), values.end(), 0);
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to match
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace sfqpart
