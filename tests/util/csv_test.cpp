#include "util/csv.h"

#include <gtest/gtest.h>

namespace sfqpart {
namespace {

TEST(CsvWriter, PlainFields) {
  CsvWriter writer({"a", "b"});
  writer.add_row({"1", "2"});
  EXPECT_EQ(writer.to_string(), "a,b\n1,2\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  CsvWriter writer({"name"});
  writer.add_row({"has,comma"});
  writer.add_row({"has\"quote"});
  writer.add_row({"has\nnewline"});
  EXPECT_EQ(writer.to_string(),
            "name\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(CsvParse, Simple) {
  auto doc = parse_csv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvParse, QuotedFieldsAndCrlf) {
  auto doc = parse_csv("h1,h2\r\n\"a,b\",\"say \"\"hi\"\"\"\r\n");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->rows[0][0], "a,b");
  EXPECT_EQ(doc->rows[0][1], "say \"hi\"");
}

TEST(CsvParse, EmptyFieldsPreserved) {
  auto doc = parse_csv("a,b,c\n,,\n");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvParse, MissingFinalNewline) {
  auto doc = parse_csv("a,b\n1,2");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvParse, BlankLinesSkipped) {
  auto doc = parse_csv("a\n\n1\n\n");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->rows.size(), 1u);
}

TEST(CsvParse, RejectsRaggedRows) {
  EXPECT_FALSE(parse_csv("a,b\n1\n").is_ok());
}

TEST(CsvParse, RejectsUnterminatedQuote) {
  EXPECT_FALSE(parse_csv("a\n\"oops\n").is_ok());
}

TEST(CsvParse, RejectsEmptyDocument) {
  EXPECT_FALSE(parse_csv("").is_ok());
}

TEST(CsvRoundTrip, WriteThenParse) {
  CsvWriter writer({"circuit", "metric"});
  writer.add_row({"ksa4", "74.6%"});
  writer.add_row({"weird,name", "x\"y"});
  auto doc = parse_csv(writer.to_string());
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->rows[1][0], "weird,name");
  EXPECT_EQ(doc->rows[1][1], "x\"y");
}

TEST(CsvFile, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/sfqpart_csv_test.csv";
  CsvWriter writer({"k", "v"});
  writer.add_row({"1", "one"});
  ASSERT_TRUE(writer.write_file(path).is_ok());
  auto doc = read_csv_file(path);
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->rows[0][1], "one");
}

TEST(CsvFile, MissingFileIsError) {
  EXPECT_FALSE(read_csv_file("/nonexistent/path.csv").is_ok());
}

}  // namespace
}  // namespace sfqpart
