#include "util/logging.h"

#include <gtest/gtest.h>

namespace sfqpart {
namespace {

TEST(Logging, LevelRoundTrips) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Logging, SuppressedMessagesDoNotFormat) {
  // A message below the threshold must not evaluate lazily streamed
  // arguments' side effects into output (and must not crash).
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  SFQ_LOG_DEBUG << "invisible " << 42;
  SFQ_LOG_INFO << "also invisible";
  set_log_level(original);
}

TEST(Logging, EmittingAllLevelsIsSafe) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  SFQ_LOG_DEBUG << "debug " << 1;
  SFQ_LOG_INFO << "info " << 2.5;
  SFQ_LOG_WARN << "warn " << "text";
  SFQ_LOG_ERROR << "error";
  set_log_level(original);
}

}  // namespace
}  // namespace sfqpart
