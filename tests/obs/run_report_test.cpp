// RunReport schema self-check: a real run's report must round-trip
// through the util/json parser ("sfqpart.run_report.v2", DESIGN.md
// section 8.2) with every documented key present.
#include "obs/run_report.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/multilevel.h"
#include "core/solver.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"

namespace sfqpart {
namespace {

obs::RunReport solver_report(const Netlist& netlist, int restarts) {
  obs::RunReport report;
  SolverConfig config;
  config.restarts = restarts;
  config.refine = true;
  config.observer = &report;
  const auto result = Solver(std::move(config)).run(netlist);
  EXPECT_TRUE(result.is_ok()) << result.status().message();
  report.set_circuit(netlist.name(), netlist.num_partitionable_gates(),
                     static_cast<int>(netlist.connections().size()));
  if (result.is_ok()) {
    report.set_metrics(compute_metrics(netlist, result->partition));
  }
  return report;
}

TEST(RunReport, AggregatesTheRun) {
  const Netlist netlist = build_mapped("ksa4");
  const obs::RunReport report = solver_report(netlist, 2);

  ASSERT_TRUE(report.has_run());
  EXPECT_EQ(report.info().engine, "solver");
  EXPECT_EQ(report.info().restarts, 2);
  ASSERT_EQ(report.restarts().size(), 2u);
  for (const auto& curve : report.restarts()) {
    EXPECT_TRUE(curve.started);
    EXPECT_TRUE(curve.finished);
    EXPECT_FALSE(curve.samples.empty());
    // The weighted total can be legitimately negative for near-perfect
    // partitions of tiny circuits; only check that it was recorded.
    EXPECT_NE(curve.discrete_total, 0.0);
    EXPECT_GT(curve.refine_passes, 0);
    // Curves are recorded in iteration order even under threads.
    for (std::size_t i = 0; i < curve.samples.size(); ++i) {
      EXPECT_EQ(curve.samples[i].iteration, static_cast<int>(i));
    }
  }
  EXPECT_GT(report.stage_ms("run"), 0.0);
  EXPECT_GT(report.stage_ms("optimize"), 0.0);
  // The optimizer breaks its loop down into gradient and step stages; the
  // gradient evaluation dominates, so the sub-stage must have landed real
  // time inside the "optimize" envelope.
  EXPECT_GT(report.stage_ms("gradient"), 0.0);
  EXPECT_LE(report.stage_ms("gradient") + report.stage_ms("step"),
            report.stage_ms("optimize"));
  EXPECT_EQ(report.stage_ms("no_such_stage"), 0.0);
  EXPECT_GT(report.counter("optimizer_iterations"), 0);
}

TEST(RunReport, JsonRoundTripsThroughTheParser) {
  const Netlist netlist = build_mapped("ksa4");
  const obs::RunReport report = solver_report(netlist, 2);

  const std::string text = report.to_json().dump(2);
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();

  const Json& doc = *parsed;
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->as_string(), "sfqpart.run_report.v2");
  EXPECT_EQ(doc.find("engine")->as_string(), "solver");

  const Json* circuit = doc.find("circuit");
  ASSERT_NE(circuit, nullptr);
  EXPECT_EQ(circuit->find("name")->as_string(), netlist.name());
  EXPECT_EQ(circuit->find("gates")->as_int(),
            netlist.num_partitionable_gates());

  const Json* config = doc.find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->find("num_planes")->as_int(), 5);
  EXPECT_EQ(config->find("restarts")->as_int(), 2);
  ASSERT_NE(config->find("weights"), nullptr);
  ASSERT_NE(config->find("optimizer"), nullptr);
  EXPECT_GT(config->find("optimizer")->find("max_iterations")->as_int(), 0);

  const Json* restarts = doc.find("restarts");
  ASSERT_NE(restarts, nullptr);
  ASSERT_EQ(restarts->size(), 2u);
  const Json& first = restarts->at(0);
  EXPECT_EQ(first.find("restart")->as_int(), 0);
  ASSERT_NE(first.find("curve"), nullptr);
  ASSERT_GT(first.find("curve")->size(), 0u);
  const Json& sample = first.find("curve")->at(0);
  EXPECT_EQ(sample.find("iteration")->as_int(), 0);
  EXPECT_GT(sample.find("cost")->as_number(), 0.0);
  ASSERT_NE(sample.find("f1"), nullptr);

  ASSERT_NE(doc.find("stages"), nullptr);
  ASSERT_NE(doc.find("stages")->find("run"), nullptr);
  EXPECT_GT(doc.find("stages")->find("run")->find("total_ms")->as_number(),
            0.0);

  const Json* result = doc.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_GE(result->find("winning_restart")->as_int(), 0);
  EXPECT_NE(result->find("discrete_total")->as_number(), 0.0);

  const Json* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_GT(metrics->find("d1")->as_number(), 0.0);
  EXPECT_GT(metrics->find("bcir_ma")->as_number(), 0.0);

  // Full fixed-point check: dump -> parse -> dump is the identity.
  EXPECT_EQ(parsed->dump(0), Json::parse(parsed->dump(0))->dump(0));
  EXPECT_EQ(parsed->dump(2), text);
}

TEST(RunReport, MultilevelRunRecordsLevels) {
  const Netlist netlist = build_mapped("c3540");
  obs::RunReport report;
  MultilevelOptions options;
  options.observer = &report;
  const MultilevelResult result = multilevel_partition(netlist, 4, options);
  ASSERT_GT(result.levels, 0);

  // The first run_start wins: the report describes the multilevel-driven
  // coarse solve, and the levels array mirrors the coarsening.
  ASSERT_TRUE(report.has_run());
  EXPECT_EQ(report.levels().size(),
            static_cast<std::size_t>(result.levels) + 1);
  EXPECT_GT(report.stage_ms("coarsen"), 0.0);
  EXPECT_GT(report.stage_ms("coarse_solve"), 0.0);
  EXPECT_GT(report.stage_ms("uncoarsen"), 0.0);

  const auto parsed = Json::parse(report.to_json().dump(0));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  const Json* levels = parsed->find("levels");
  ASSERT_NE(levels, nullptr);
  EXPECT_EQ(levels->size(), report.levels().size());
  EXPECT_GT(levels->at(0).find("vertices")->as_int(),
            levels->at(levels->size() - 1).find("vertices")->as_int());
}

TEST(RunReport, WriteFileProducesParseableJson) {
  const Netlist netlist = build_mapped("ksa4");
  const obs::RunReport report = solver_report(netlist, 1);

  const std::string path = "run_report_test_out.json";
  ASSERT_TRUE(report.write_file(path).is_ok());
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::remove(path.c_str());

  const auto parsed = Json::parse(buffer.str());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  EXPECT_EQ(parsed->find("schema")->as_string(), "sfqpart.run_report.v2");
}

}  // namespace
}  // namespace sfqpart
