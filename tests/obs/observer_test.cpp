// Observer event-stream contract: serialized delivery, deterministic
// per-restart subsequences at every thread count, engine-name rewriting on
// the registry path, and non-perturbation of the solver result.
#include "obs/observer.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/annealing.h"
#include "baseline/fm_kway.h"
#include "core/engine.h"
#include "core/multilevel.h"
#include "core/solver.h"
#include "gen/suite.h"

namespace sfqpart {
namespace {

// Flat record of one event; `detail` disambiguates timers/counters by
// name. Timer durations are dropped on purpose: wall times are the one
// nondeterministic field of the stream.
struct Recorded {
  std::string type;
  std::string detail;
  int restart = -1;
  int iteration = -1;
  double cost = 0.0;
};

class Recorder final : public obs::SolverObserver {
 public:
  void on_run_start(const obs::RunInfo& info) override {
    infos.push_back(info);
    events.push_back({"run_start", info.engine, -1, -1, 0.0});
  }
  void on_restart_start(const obs::RestartStartEvent& e) override {
    events.push_back({"restart_start", "", e.restart, -1, 0.0});
  }
  void on_iteration(const obs::IterationEvent& e) override {
    events.push_back({"iteration", "", e.restart, e.iteration, e.cost});
  }
  void on_harden(const obs::HardenEvent& e) override {
    events.push_back({"harden", "", e.restart, -1, e.discrete_total});
  }
  void on_refine_pass(const obs::RefinePassEvent& e) override {
    events.push_back({"refine_pass", "", e.restart, e.pass, e.cost});
  }
  void on_restart_end(const obs::RestartEndEvent& e) override {
    events.push_back(
        {"restart_end", "", e.restart, e.iterations, e.discrete_total});
  }
  void on_level(const obs::LevelEvent& e) override {
    events.push_back({"level", "", -1, e.level,
                      static_cast<double>(e.num_vertices)});
  }
  void on_timer(const obs::TimerEvent& e) override {
    events.push_back({"timer", e.name, e.restart, -1, 0.0});
  }
  void on_counter(const obs::CounterEvent& e) override {
    events.push_back(
        {"counter", e.name, -1, -1, static_cast<double>(e.delta)});
  }
  void on_run_end(const obs::RunEndEvent& e) override {
    events.push_back(
        {"run_end", "", e.winning_restart, e.iterations, e.discrete_total});
  }

  // The subsequence of events tagged with `restart`, as comparable
  // strings (type/detail/iteration/cost — everything deterministic).
  std::vector<std::string> restart_sequence(int restart) const {
    std::vector<std::string> out;
    for (const Recorded& e : events) {
      if (e.restart != restart || e.type == "run_end") continue;
      out.push_back(e.type + ":" + e.detail + ":" +
                    std::to_string(e.iteration) + ":" + std::to_string(e.cost));
    }
    return out;
  }

  std::vector<Recorded> events;
  std::vector<obs::RunInfo> infos;
};

Recorder record_run(const Netlist& netlist, int threads, int restarts,
                    SolverResult* result = nullptr) {
  Recorder recorder;
  SolverConfig config;
  config.restarts = restarts;
  config.threads = threads;
  config.refine = true;
  config.observer = &recorder;
  auto solved = Solver(std::move(config)).run(netlist);
  EXPECT_TRUE(solved.is_ok()) << solved.status().message();
  if (result != nullptr && solved.is_ok()) *result = std::move(solved).value();
  return recorder;
}

TEST(Observer, LifecycleBracketsTheStream) {
  const Netlist netlist = build_mapped("ksa4");
  const Recorder recorder = record_run(netlist, 1, 2);

  ASSERT_FALSE(recorder.events.empty());
  EXPECT_EQ(recorder.events.front().type, "run_start");
  EXPECT_EQ(recorder.events.back().detail, "run");  // run-scoped timer
  // run_end precedes only the closing "run" timer.
  EXPECT_EQ(recorder.events[recorder.events.size() - 2].type, "run_end");

  ASSERT_EQ(recorder.infos.size(), 1u);
  EXPECT_EQ(recorder.infos[0].engine, "solver");
  EXPECT_EQ(recorder.infos[0].restarts, 2);
  EXPECT_EQ(recorder.infos[0].num_planes, 5);
  EXPECT_GT(recorder.infos[0].problem_gates, 0);
  EXPECT_GT(recorder.infos[0].problem_edges, 0);
}

TEST(Observer, RestartSubsequenceIsWellFormed) {
  const Netlist netlist = build_mapped("ksa4");
  const Recorder recorder = record_run(netlist, 1, 3);

  for (int r = 0; r < 3; ++r) {
    const auto seq = recorder.restart_sequence(r);
    ASSERT_GE(seq.size(), 3u) << "restart " << r;
    EXPECT_EQ(seq.front().substr(0, 13), "restart_start");
    EXPECT_EQ(seq.back().substr(0, 11), "restart_end");
    // Iterations arrive in order, before hardening.
    int last_iteration = -1;
    bool saw_harden = false;
    for (const Recorded& e : recorder.events) {
      if (e.restart != r) continue;
      if (e.type == "iteration") {
        EXPECT_FALSE(saw_harden);
        EXPECT_EQ(e.iteration, last_iteration + 1);
        last_iteration = e.iteration;
      }
      if (e.type == "harden") saw_harden = true;
    }
    EXPECT_TRUE(saw_harden);
    EXPECT_GE(last_iteration, 0);
  }
}

TEST(Observer, PerRestartSequencesIdenticalAcrossThreadCounts) {
  const Netlist netlist = build_mapped("ksa4");
  constexpr int kRestarts = 3;
  SolverResult serial_result;
  const Recorder serial = record_run(netlist, 1, kRestarts, &serial_result);
  for (const int threads : {2, 8}) {
    SolverResult threaded_result;
    const Recorder threaded =
        record_run(netlist, threads, kRestarts, &threaded_result);
    for (int r = 0; r < kRestarts; ++r) {
      EXPECT_EQ(serial.restart_sequence(r), threaded.restart_sequence(r))
          << "threads=" << threads << " restart=" << r;
    }
    // The observed result stays bit-identical too.
    EXPECT_EQ(serial_result.partition.plane_of,
              threaded_result.partition.plane_of);
    EXPECT_EQ(serial_result.discrete_total, threaded_result.discrete_total);
    EXPECT_EQ(serial_result.winning_restart, threaded_result.winning_restart);
  }
}

TEST(Observer, AttachingAnObserverDoesNotChangeTheResult) {
  const Netlist netlist = build_mapped("ksa8");
  SolverConfig plain;
  plain.restarts = 2;
  const auto unobserved = Solver(plain).run(netlist);
  ASSERT_TRUE(unobserved.is_ok());

  Recorder recorder;
  SolverConfig observed = plain;
  observed.observer = &recorder;
  const auto with_observer = Solver(std::move(observed)).run(netlist);
  ASSERT_TRUE(with_observer.is_ok());

  EXPECT_EQ(unobserved->partition.plane_of, with_observer->partition.plane_of);
  EXPECT_EQ(unobserved->discrete_total, with_observer->discrete_total);
  EXPECT_EQ(unobserved->winning_restart, with_observer->winning_restart);
}

// The registry rewrites the outermost RunInfo::engine to the registry
// name ("gradient") while forwarding the rest of the stream untouched;
// the direct Solver keeps its own "solver" tag.
TEST(Observer, RegistryRewritesRunInfoEngineName) {
  const Netlist netlist = build_mapped("ksa4");

  Recorder direct;
  SolverConfig config;
  config.restarts = 2;
  config.observer = &direct;
  ASSERT_TRUE(Solver(std::move(config)).run(netlist).is_ok());
  ASSERT_FALSE(direct.infos.empty());
  EXPECT_EQ(direct.infos[0].engine, "solver");

  Recorder via_registry;
  auto engine = EngineRegistry::create("gradient");
  ASSERT_TRUE(engine.is_ok()) << engine.status().message();
  EngineContext context;
  context.restarts = 2;
  context.observer = &via_registry;
  ASSERT_TRUE((*engine)->run(netlist, context).is_ok());
  ASSERT_FALSE(via_registry.infos.empty());
  EXPECT_EQ(via_registry.infos[0].engine, "gradient");

  // Only the name differs: the iteration subsequences are identical.
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(direct.restart_sequence(r), via_registry.restart_sequence(r));
  }
}

TEST(Observer, MulticastForwardsToEveryObserverInOrder) {
  Recorder first;
  Recorder second;
  obs::MulticastObserver multicast;
  EXPECT_TRUE(multicast.empty());
  multicast.add(&first);
  multicast.add(&second);
  multicast.add(nullptr);  // ignored
  EXPECT_FALSE(multicast.empty());

  multicast.on_run_start({});
  multicast.on_iteration({0, 7, CostTerms{}, 1.25});
  multicast.on_run_end({0, 1.25, 7, true});

  ASSERT_EQ(first.events.size(), 3u);
  ASSERT_EQ(second.events.size(), 3u);
  for (std::size_t i = 0; i < first.events.size(); ++i) {
    EXPECT_EQ(first.events[i].type, second.events[i].type);
  }
  EXPECT_EQ(first.events[1].iteration, 7);
  EXPECT_EQ(first.events[1].cost, 1.25);
}

TEST(Observer, SolverErrorsEmitNoEvents) {
  const Netlist netlist = build_mapped("ksa4");
  Recorder recorder;
  SolverConfig bad;
  bad.restarts = 0;
  bad.observer = &recorder;
  EXPECT_FALSE(Solver(std::move(bad)).run(netlist).is_ok());
  // Validation fails before run_start: a report never sees a half-run.
  for (const Recorded& e : recorder.events) {
    EXPECT_NE(e.type, "run_start");
    EXPECT_NE(e.type, "iteration");
  }
}

TEST(Observer, MultilevelEmitsLevelsAndForwardsCoarseSolve) {
  const Netlist netlist = build_mapped("ksa16");
  Recorder recorder;
  MultilevelOptions options;
  options.observer = &recorder;
  const MultilevelResult result = multilevel_partition(netlist, 4, options);
  EXPECT_GT(result.levels, 0);

  int levels = 0;
  bool saw_projection_refit = false;
  for (const Recorded& e : recorder.events) {
    if (e.type == "level") ++levels;
    if (e.type == "refine_pass" && e.restart < 0) saw_projection_refit = true;
  }
  EXPECT_EQ(levels, result.levels + 1);  // finest level 0 + each coarsening
  EXPECT_TRUE(saw_projection_refit);
  // The outer drive announces itself first, then the coarse Solver
  // (which inherits the observer) nests its own run inside.
  ASSERT_EQ(recorder.infos.size(), 2u);
  EXPECT_EQ(recorder.infos[0].engine, "multilevel");
  EXPECT_EQ(recorder.infos[1].engine, "solver");
  EXPECT_EQ(recorder.events.front().type, "run_start");
  EXPECT_EQ(recorder.events.back().type, "run_end");
}

TEST(Observer, AnnealingEmitsLifecycleAndMoveCounters) {
  const Netlist netlist = build_mapped("ksa4");
  Recorder recorder;
  AnnealingOptions options;
  options.temperature_steps = 6;
  options.observer = &recorder;
  anneal_partition(netlist, 3, options);

  ASSERT_EQ(recorder.infos.size(), 1u);
  EXPECT_EQ(recorder.infos[0].engine, "annealing");
  long long tried = -1;
  int iterations = 0;
  for (const Recorded& e : recorder.events) {
    if (e.type == "counter" && e.detail == "moves_tried") {
      tried = static_cast<long long>(e.cost);
    }
    if (e.type == "iteration") ++iterations;
  }
  EXPECT_GT(tried, 0);
  EXPECT_GT(iterations, 0);
  EXPECT_EQ(recorder.events.back().detail, "anneal");  // scoped timer closes last
}

TEST(Observer, FmKwayEmitsLifecycleAndMoveCounters) {
  const Netlist netlist = build_mapped("ksa4");
  Recorder recorder;
  FmOptions options;
  options.observer = &recorder;
  const FmResult result = fm_kway_partition(netlist, 3, options);

  ASSERT_EQ(recorder.infos.size(), 1u);
  EXPECT_EQ(recorder.infos[0].engine, "fm_kway");
  double final_cost = -1.0;
  for (const Recorded& e : recorder.events) {
    if (e.type == "iteration") final_cost = e.cost;
  }
  EXPECT_EQ(final_cost, static_cast<double>(result.final_cut));
}

}  // namespace
}  // namespace sfqpart
