#include "verilog/verilog_parser.h"
#include "verilog/verilog_writer.h"

#include <gtest/gtest.h>

#include "gen/sim.h"
#include "gen/suite.h"
#include "netlist/stats.h"
#include "netlist/validate.h"
#include "util/rng.h"

namespace sfqpart {
namespace {

constexpr const char* kSample = R"(
// hand-written sample
module demo (a, b, y);
  input a, b;
  output y;
  wire w1;  /* the AND output
               spans a block comment */
  wire w2;
  AND2T g1 (.A(a), .B(b), .Q(w1));
  DFFT  g2 (.A(w1), .Q(w2));
  JTL   g3 (.A(w2), .Q(y));
endmodule
)";

TEST(VerilogParser, ParsesSampleModule) {
  auto module = parse_verilog(kSample);
  ASSERT_TRUE(module.is_ok()) << module.status().message();
  EXPECT_EQ(module->name, "demo");
  EXPECT_EQ(module->inputs, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(module->outputs, (std::vector<std::string>{"y"}));
  EXPECT_EQ(module->wires.size(), 2u);
  ASSERT_EQ(module->instances.size(), 3u);
  EXPECT_EQ(module->instances[0].cell, "AND2T");
  EXPECT_EQ(module->instances[0].name, "g1");
  ASSERT_EQ(module->instances[0].connections.size(), 3u);
  EXPECT_EQ(module->instances[0].connections[0].pin, "A");
  EXPECT_EQ(module->instances[0].connections[0].net, "a");
}

TEST(VerilogParser, EscapedIdentifiers) {
  const char* text =
      "module m (\\a[0] );\n  input \\a[0] ;\n"
      "  SFQDC g (.A(\\a[0] ));\nendmodule\n";
  auto module = parse_verilog(text);
  ASSERT_TRUE(module.is_ok()) << module.status().message();
  EXPECT_EQ(module->inputs[0], "a[0]");
  EXPECT_EQ(module->instances[0].connections[0].net, "a[0]");
}

TEST(VerilogParser, RejectsBehavioralConstructs) {
  const auto result =
      parse_verilog("module m ();\n  assign x = y;\nendmodule\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("behavioral"), std::string::npos);
}

TEST(VerilogParser, RejectsTruncatedModule) {
  EXPECT_FALSE(parse_verilog("module m ();\n  wire w;\n").is_ok());
  EXPECT_FALSE(parse_verilog("").is_ok());
}

TEST(VerilogToNetlist, BuildsConnectivity) {
  auto module = parse_verilog(kSample);
  ASSERT_TRUE(module.is_ok());
  auto netlist = verilog_to_netlist(*module, default_sfq_library());
  ASSERT_TRUE(netlist.is_ok()) << netlist.status().message();
  EXPECT_EQ(netlist->num_partitionable_gates(), 3);
  const GateId g1 = netlist->find_gate("g1");
  const GateId g2 = netlist->find_gate("g2");
  ASSERT_NE(g1, kInvalidGate);
  const NetId w1 = netlist->output_net(g1, 0);
  ASSERT_NE(w1, kInvalidNet);
  EXPECT_EQ(netlist->net(w1).sinks[0].gate, g2);
  EXPECT_TRUE(validate(*netlist).ok());
}

TEST(VerilogToNetlist, ErrorsAreStatuses) {
  {
    auto module = parse_verilog(
        "module m ();\n  NOSUCH g (.A(x));\nendmodule\n");
    ASSERT_TRUE(module.is_ok());
    EXPECT_FALSE(verilog_to_netlist(*module, default_sfq_library()).is_ok());
  }
  {
    auto module = parse_verilog(
        "module m (y);\n  output y;\n  DFFT g (.A(nowhere), .Q(y));\nendmodule\n");
    ASSERT_TRUE(module.is_ok());
    EXPECT_FALSE(verilog_to_netlist(*module, default_sfq_library()).is_ok());
  }
  {
    auto module = parse_verilog(
        "module m (a);\n  input a;\n  DFFT g1 (.A(a), .Q(x));\n"
        "  DFFT g1 (.A(x), .Q(z));\nendmodule\n");
    ASSERT_TRUE(module.is_ok());
    EXPECT_FALSE(verilog_to_netlist(*module, default_sfq_library()).is_ok());
  }
}

class VerilogRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(VerilogRoundTrip, PreservesStructureAndFunction) {
  const Netlist original = build_mapped(GetParam());
  const std::string text = write_verilog(original);
  auto module = parse_verilog(text);
  ASSERT_TRUE(module.is_ok()) << module.status().message();
  auto parsed = verilog_to_netlist(*module, original.library());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();

  const NetlistStats before = compute_stats(original);
  const NetlistStats after = compute_stats(*parsed);
  EXPECT_EQ(after.num_gates, before.num_gates);
  EXPECT_EQ(after.num_connections, before.num_connections);
  EXPECT_EQ(after.by_kind, before.by_kind);
  EXPECT_TRUE(validate(*parsed).ok());

  // Word-level function survives the round trip.
  if (std::string(GetParam()) == "ksa4") {
    Rng rng(1);
    for (int trial = 0; trial < 10; ++trial) {
      SignalValues in;
      set_word(in, "a", 4, rng.uniform_index(16));
      set_word(in, "b", 4, rng.uniform_index(16));
      EXPECT_EQ(simulate(original, in), simulate(*parsed, in));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, VerilogRoundTrip,
                         ::testing::Values("ksa4", "mult4"),
                         [](const auto& info) { return std::string(info.param); });

TEST(VerilogWriter, EmitsEscapedIdentifiersForBusBits) {
  const Netlist netlist = build_mapped("ksa4");
  const std::string text = write_verilog(netlist);
  EXPECT_NE(text.find("\\a[0] "), std::string::npos);
  EXPECT_NE(text.find("module ksa4"), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
  EXPECT_EQ(text.find("pin:"), std::string::npos);
}

}  // namespace
}  // namespace sfqpart
