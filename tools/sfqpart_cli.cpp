// sfqpart — command line driver for the ground-plane partitioning flow.
//
//   sfqpart --list-engines
//   sfqpart list
//   sfqpart stats     --circuit ksa8 | --def design.def [--json]
//   sfqpart partition --circuit ksa8 --planes 5 [--refine] [--engine <name>]
//                     [--seed N] [--restarts N] [--threads N] [--progress]
//                     [--json] [--csv out.csv] [--dot out.dot]
//                     [--report-json report.json] [--trace]
//   sfqpart kres      --circuit id8 --limit 100 [--json]
//   sfqpart sweep     --circuit ksa8 --engine vcycle --sweep "planes=3,4,5"
//                     [--warm-neighbors]
//   sfqpart plan      --circuit ksa8 --planes 4 [--json]
//   sfqpart emit      --circuit mult4 --dir out/
//
// Every partitioning command selects its algorithm with --engine; the
// available engines come from the EngineRegistry (core/engine.h) and are
// listed by `sfqpart --list-engines`. Circuits come from the built-in
// benchmark suite or from a DEF file (--def); all stochastic steps honor
// --seed.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>

#include "core/engine.h"
#include "core/kres_search.h"
#include "core/partition_io.h"
#include "core/sweep.h"
#include "def/def_parser.h"
#include "def/def_writer.h"
#include "def/lef_parser.h"
#include "floorplan/floorplan.h"
#include "gen/suite.h"
#include "timing/timing.h"
#include "metrics/partition_metrics.h"
#include "metrics/report.h"
#include "netlist/dot.h"
#include "netlist/stats.h"
#include "netlist/validate.h"
#include "obs/observer.h"
#include "obs/run_report.h"
#include "obs/stream_tracer.h"
#include "recycling/bias_plan.h"
#include "service/daemon.h"
#include "recycling/coupling.h"
#include "recycling/power.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/options.h"
#include "verilog/verilog_parser.h"
#include "verilog/verilog_writer.h"

namespace sfqpart {
namespace {

constexpr const char* kUsage =
    "usage: sfqpart <list|stats|partition|evaluate|kres|sweep|plan|timing|"
    "floorplan|emit> [flags]\n"
    "       sfqpart --list-engines [--json]\n"
    "run `sfqpart <command> --help` for the command's flags\n";

OptionsParser make_parser(const std::string& command) {
  OptionsParser parser("sfqpart " + command);
  parser.add_string("circuit", "ksa8", "benchmark circuit name (see `sfqpart list`)");
  parser.add_string("def", "", "read the netlist from this DEF file instead");
  parser.add_string("verilog", "", "read the netlist from this structural Verilog file");
  parser.add_int("planes", 5, "number of ground planes K");
  parser.add_int("seed", 1, "random seed");
  parser.add_flag("json", false, "emit machine-readable JSON on stdout");
  parser.add_flag("help", false, "show this help");
  parser.add_string("engine", "gradient",
                    "partitioning engine (see `sfqpart --list-engines`)");
  parser.add_flag("refine", false, "greedy refinement after gradient descent");
  parser.add_int("restarts", 3, "independent random restarts");
  parser.add_int("threads", 0,
                 "worker threads for gradient restarts (0 = hardware concurrency)");
  parser.add_flag("progress", false,
                  "report live convergence (restart/iteration/cost) on stderr");
  parser.add_string("report-json", "",
                    "write a machine-readable run report (config, convergence "
                    "curves, stage times, metrics) to this file");
  parser.add_flag("trace", false,
                  "stream solver events (restarts, iterations, timers) on stderr");
  parser.add_string("csv", "", "write gate->plane assignments to this CSV file");
  parser.add_string("dot", "", "write a plane-colored DOT graph to this file");
  parser.add_flag("certify", false,
                  "independently re-derive and check the result "
                  "(core/certify.h); always on in debug builds");
  parser.add_string("pin", "",
                    "pin gates to planes: comma-separated name=plane list, "
                    "e.g. --pin 'u1=0,u7=2'");
  parser.add_string("group", "",
                    "co-locate gates on one plane: ';'-separated groups of "
                    "comma-separated names, e.g. --group 'u1,u2;u5,u6'");
  parser.add_double("limit", 100.0, "bias pad limit in mA (kres)");
  parser.add_string("dir", ".", "output directory (emit)");
  parser.add_string("assignment", "", "gate->plane CSV to evaluate (evaluate)");
  parser.add_string("warm-start", "",
                    "seed the engine from this gate->plane CSV (typically a "
                    "previous revision's --csv output; stale rows are "
                    "skipped, missing gates start unassigned)");
  parser.add_string("refine-style", "banded",
                    "vcycle uncoarsening refinement: banded | buckets");
  parser.add_int("halo", 2,
                 "eco engine: BFS hops around the dirty region the "
                 "restricted refinement may move");
  parser.add_flag("compare-scratch", false,
                  "eco engine: also run a scratch vcycle and report "
                  "speedup_vs_scratch / cost_drift_pct counters");
  parser.add_string("sweep", "",
                    "parameter sweep axes: ';'-separated name=v1,v2,... "
                    "lists of engine options, e.g. --sweep 'planes=3,4,5;"
                    "c2=0.1,0.5' (sweep command)");
  parser.add_flag("warm-neighbors", false,
                  "sweep: warm-start each point from its best completed "
                  "neighbor instead of running every point cold");
  return parser;
}

StatusOr<Netlist> load_netlist(const OptionsParser& options) {
  const std::string def_path = options.get_string("def");
  if (!def_path.empty()) {
    auto design = def::read_def_file(def_path);
    if (!design) return design.status();
    return def::def_to_netlist(*design, default_sfq_library());
  }
  const std::string verilog_path = options.get_string("verilog");
  if (!verilog_path.empty()) {
    auto module = read_verilog_file(verilog_path);
    if (!module) return module.status();
    return verilog_to_netlist(*module, default_sfq_library());
  }
  const SuiteEntry* entry = find_benchmark(options.get_string("circuit"));
  if (entry == nullptr) {
    return Status::error("unknown circuit '" + options.get_string("circuit") +
                         "'; run `sfqpart list`");
  }
  return build_mapped(*entry);
}

Json metrics_json(const PartitionMetrics& m) {
  Json distances = Json::array();
  for (int d = 0; d < m.num_planes; ++d) {
    distances.append(Json::number(
        static_cast<long long>(m.distance_histogram[static_cast<std::size_t>(d)])));
  }
  Json planes = Json::array();
  for (int k = 0; k < m.num_planes; ++k) {
    const auto uk = static_cast<std::size_t>(k);
    planes.append(Json::object()
                      .set("gates", Json::number(static_cast<long long>(m.plane_gates[uk])))
                      .set("bias_ma", Json::number(m.plane_bias_ma[uk]))
                      .set("area_um2", Json::number(m.plane_area_um2[uk])));
  }
  return Json::object()
      .set("planes", Json::number(static_cast<long long>(m.num_planes)))
      .set("gates", Json::number(static_cast<long long>(m.num_gates)))
      .set("connections", Json::number(static_cast<long long>(m.num_connections)))
      .set("d1", Json::number(m.frac_within(1)))
      .set("d2", Json::number(m.frac_within(2)))
      .set("bcir_ma", Json::number(m.total_bias_ma))
      .set("bmax_ma", Json::number(m.bmax_ma))
      .set("icomp_frac", Json::number(m.icomp_frac()))
      .set("acir_mm2", Json::number(m.total_area_mm2()))
      .set("amax_mm2", Json::number(m.amax_mm2()))
      .set("afs_frac", Json::number(m.afs_frac()))
      .set("distance_histogram", std::move(distances))
      .set("per_plane", std::move(planes));
}

int cmd_list() {
  for (const SuiteEntry& entry : benchmark_suite()) {
    std::printf("%-7s %s (paper: %d gates, %d connections)\n", entry.name.c_str(),
                entry.description.c_str(), entry.paper.gates,
                entry.paper.connections);
  }
  for (const SuiteEntry& entry : extra_circuits()) {
    std::printf("%-7s %s (extra, not in the paper's table)\n", entry.name.c_str(),
                entry.description.c_str());
  }
  return 0;
}

int cmd_stats(const OptionsParser& options) {
  auto netlist = load_netlist(options);
  if (!netlist) {
    std::fprintf(stderr, "%s\n", netlist.status().message().c_str());
    return 1;
  }
  const NetlistStats stats = compute_stats(*netlist);
  if (options.get_flag("json")) {
    Json mix = Json::object();
    for (const auto& [kind, count] : stats.by_kind) {
      mix.set(cell_kind_name(kind), Json::number(static_cast<long long>(count)));
    }
    std::printf("%s\n",
                Json::object()
                    .set("name", Json::string(netlist->name()))
                    .set("gates", Json::number(static_cast<long long>(stats.num_gates)))
                    .set("io", Json::number(static_cast<long long>(stats.num_io)))
                    .set("connections",
                         Json::number(static_cast<long long>(stats.num_connections)))
                    .set("bias_ma", Json::number(stats.total_bias_ma))
                    .set("area_mm2", Json::number(stats.total_area_mm2()))
                    .set("jj", Json::number(static_cast<long long>(stats.total_jj)))
                    .set("depth", Json::number(static_cast<long long>(stats.logic_depth)))
                    .set("cell_mix", std::move(mix))
                    .dump()
                    .c_str());
  } else {
    std::fputs(format_stats(*netlist, stats).c_str(), stdout);
  }
  return 0;
}

// Prints live convergence on stderr (--progress); an observer over the
// same event stream every engine narrates.
class ProgressPrinter final : public obs::SolverObserver {
 public:
  void on_iteration(const obs::IterationEvent& e) override {
    if (e.iteration % 50 == 0) {
      std::fprintf(stderr, "[progress] restart %d iteration %d cost %.6f\n",
                   e.restart, e.iteration, e.cost);
    }
  }
};

// Parses the --pin / --group flag syntax into the GateConstraints
// declaration; name resolution and feasibility checks happen later in
// compile_constraints(), so this only rejects malformed syntax.
Status parse_constraint_flags(const OptionsParser& options,
                              GateConstraints& out) {
  const std::string pins = options.get_string("pin");
  for (std::size_t pos = 0; pos < pins.size();) {
    std::size_t end = pins.find(',', pos);
    if (end == std::string::npos) end = pins.size();
    const std::string item = pins.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::invalid_argument("--pin expects name=plane, got '" +
                                      item + "'");
    }
    char* tail = nullptr;
    const long plane = std::strtol(item.c_str() + eq + 1, &tail, 10);
    if (tail == item.c_str() + eq + 1 || *tail != '\0') {
      return Status::invalid_argument("--pin expects an integer plane in '" +
                                      item + "'");
    }
    out.pins.emplace_back(item.substr(0, eq), static_cast<int>(plane));
  }
  const std::string groups = options.get_string("group");
  for (std::size_t pos = 0; pos < groups.size();) {
    std::size_t end = groups.find(';', pos);
    if (end == std::string::npos) end = groups.size();
    const std::string spec = groups.substr(pos, end - pos);
    pos = end + 1;
    if (spec.empty()) continue;
    std::vector<std::string> members;
    for (std::size_t mpos = 0; mpos < spec.size();) {
      std::size_t mend = spec.find(',', mpos);
      if (mend == std::string::npos) mend = spec.size();
      if (mend > mpos) members.push_back(spec.substr(mpos, mend - mpos));
      mpos = mend + 1;
    }
    if (members.size() < 2) {
      return Status::invalid_argument(
          "--group expects at least two comma-separated names per group, "
          "got '" + spec + "'");
    }
    out.groups.push_back(std::move(members));
  }
  return Status::ok();
}

// Runs the engine selected by --engine with the uniform EngineContext; all
// flag validation (planes/restarts/threads) happens once inside the
// engine's run() and comes back as a Status.
StatusOr<EngineRun> run_engine(const Netlist& netlist, const OptionsParser& options,
                               obs::SolverObserver* observer = nullptr) {
  auto engine = EngineRegistry::create(options.get_string("engine"));
  if (!engine) return engine.status();

  EngineContext context;
  context.num_planes = static_cast<int>(options.get_int("planes"));
  context.seed = static_cast<std::uint64_t>(options.get_int("seed"));
  context.restarts = static_cast<int>(options.get_int("restarts"));
  context.threads = static_cast<int>(options.get_int("threads"));
  context.refine = options.get_flag("refine");
  context.refine_style = options.get_string("refine-style");
  context.halo = static_cast<int>(options.get_int("halo"));
  context.compare_scratch = options.get_flag("compare-scratch");
  // --certify forces certification on; without the flag the context keeps
  // its build-type default (on in debug builds).
  if (options.get_flag("certify")) context.certify = true;
  if (Status st = parse_constraint_flags(options, context.constraints); !st) {
    return st;
  }
  // The warm start must outlive the run; the engine call below is
  // synchronous, so this scope is enough.
  InitialPartition warm;
  const std::string warm_path = options.get_string("warm-start");
  if (!warm_path.empty()) {
    auto loaded = load_warm_start_csv(warm_path, netlist);
    if (!loaded) return loaded.status();
    warm = *std::move(loaded);
    context.warm_start = &warm;
  }
  context.observer = observer;

  ProgressPrinter printer;
  obs::MulticastObserver multicast;
  if (options.get_flag("progress")) {
    if (observer != nullptr) multicast.add(observer);
    multicast.add(&printer);
    context.observer = &multicast;
  }
  return (*engine)->run(netlist, context);
}

// Text mode: one line per engine. JSON mode: the full structured surface —
// name, description and the OptionSpec list — so tooling (and the sfqpartd
// daemon's clients) can discover engines and validate options without
// parsing prose.
int cmd_list_engines(bool as_json) {
  if (as_json) {
    // Same document the daemon serves for {"cmd": "engines"}.
    std::printf("%s\n", service::engines_json().dump().c_str());
    return 0;
  }
  for (const std::string& name : EngineRegistry::names()) {
    auto engine = EngineRegistry::create(name);
    if (!engine) continue;
    std::printf("%-11s %s\n", name.c_str(), (*engine)->description());
    for (const OptionSpec& spec : (*engine)->describe_options()) {
      std::printf("            --%s (%s, default %s)\n", spec.name.c_str(),
                  option_type_name(spec.type),
                  spec.to_json().find("default")->dump(0).c_str());
    }
  }
  return 0;
}

int cmd_partition(const OptionsParser& options) {
  auto netlist = load_netlist(options);
  if (!netlist) {
    std::fprintf(stderr, "%s\n", netlist.status().message().c_str());
    return 1;
  }

  // Observability: --report-json aggregates the run into a RunReport,
  // --trace streams events live; both at once share the stream through a
  // multicast. No flag -> null observer -> the solver pays one branch.
  const std::string report_path = options.get_string("report-json");
  obs::RunReport report;
  obs::StreamTracer tracer(stderr);
  obs::MulticastObserver multicast;
  if (!report_path.empty()) multicast.add(&report);
  if (options.get_flag("trace")) multicast.add(&tracer);
  obs::SolverObserver* observer = multicast.empty() ? nullptr : &multicast;

  const auto run = run_engine(*netlist, options, observer);
  if (!run) {
    std::fprintf(stderr, "%s\n", run.status().message().c_str());
    return 1;
  }
  const Partition& partition = run->partition;
  const PartitionMetrics metrics = compute_metrics(*netlist, partition);

  if (!report_path.empty()) {
    report.set_circuit(netlist->name(), metrics.num_gates,
                       metrics.num_connections);
    report.set_metrics(metrics);
    if (auto st = report.write_file(report_path); !st) {
      std::fprintf(stderr, "%s\n", st.message().c_str());
      return 1;
    }
  }

  if (!options.get_string("csv").empty()) {
    CsvWriter csv({"gate", "cell", "plane"});
    for (GateId g = 0; g < netlist->num_gates(); ++g) {
      if (!netlist->is_partitionable(g)) continue;
      csv.add_row({netlist->gate(g).name, netlist->cell_of(g).name,
                   std::to_string(partition.plane(g))});
    }
    if (auto st = csv.write_file(options.get_string("csv")); !st) {
      std::fprintf(stderr, "%s\n", st.message().c_str());
      return 1;
    }
  }
  if (!options.get_string("dot").empty()) {
    const std::string dot_path = options.get_string("dot");
    DotOptions dot_options;
    dot_options.plane_of = partition.plane_of;
    std::ofstream file(dot_path);
    if (!file) {
      std::fprintf(stderr, "cannot open for writing: %s\n", dot_path.c_str());
      return 1;
    }
    file << to_dot(*netlist, dot_options);
    if (!file) {
      std::fprintf(stderr, "write failed: %s\n", dot_path.c_str());
      return 1;
    }
  }

  if (options.get_flag("json")) {
    Json assignment = Json::object();
    for (GateId g = 0; g < netlist->num_gates(); ++g) {
      if (netlist->is_partitionable(g)) {
        assignment.set(netlist->gate(g).name,
                       Json::number(static_cast<long long>(partition.plane(g))));
      }
    }
    Json counters = Json::object();
    for (const auto& [name, value] : run->counters) {
      counters.set(name, Json::number(value));
    }
    std::printf("%s\n", Json::object()
                            .set("circuit", Json::string(netlist->name()))
                            .set("engine", Json::string(options.get_string("engine")))
                            // No wall_ms here: --json stdout is the
                            // deterministic document (byte-identical at
                            // any thread count); timings live in
                            // --report-json.
                            .set("discrete_total", Json::number(run->discrete_total))
                            .set("counters", std::move(counters))
                            .set("metrics", metrics_json(metrics))
                            .set("assignment", std::move(assignment))
                            .dump()
                            .c_str());
  } else {
    std::fputs(format_partition_report(*netlist, partition, metrics).c_str(),
               stdout);
  }
  return 0;
}

int cmd_evaluate(const OptionsParser& options) {
  auto netlist = load_netlist(options);
  if (!netlist) {
    std::fprintf(stderr, "%s\n", netlist.status().message().c_str());
    return 1;
  }
  const std::string path = options.get_string("assignment");
  if (path.empty()) {
    std::fprintf(stderr, "evaluate needs --assignment <csv>\n");
    return 1;
  }
  auto partition = load_partition_csv(path, *netlist);
  if (!partition) {
    std::fprintf(stderr, "%s\n", partition.status().message().c_str());
    return 1;
  }
  const PartitionMetrics metrics = compute_metrics(*netlist, *partition);
  if (options.get_flag("json")) {
    std::printf("%s\n", Json::object()
                            .set("circuit", Json::string(netlist->name()))
                            .set("assignment", Json::string(path))
                            .set("metrics", metrics_json(metrics))
                            .dump()
                            .c_str());
  } else {
    std::fputs(format_partition_report(*netlist, *partition, metrics).c_str(),
               stdout);
  }
  return 0;
}

int cmd_kres(const OptionsParser& options) {
  auto netlist = load_netlist(options);
  if (!netlist) {
    std::fprintf(stderr, "%s\n", netlist.status().message().c_str());
    return 1;
  }
  KresOptions kopt;
  kopt.bias_limit_ma = options.get_double("limit");
  kopt.base.seed = static_cast<std::uint64_t>(options.get_int("seed"));
  auto search = find_min_planes(*netlist, kopt);
  if (!search) {
    std::fprintf(stderr, "%s\n", search.status().message().c_str());
    return 1;
  }
  const KresResult& result = *search;
  if (!result.found) {
    std::fprintf(stderr, "no feasible K up to %d\n", kopt.max_planes);
    return 1;
  }
  if (options.get_flag("json")) {
    std::printf("%s\n",
                Json::object()
                    .set("circuit", Json::string(netlist->name()))
                    .set("limit_ma", Json::number(kopt.bias_limit_ma))
                    .set("k_lb", Json::number(static_cast<long long>(result.k_lb)))
                    .set("k_res", Json::number(static_cast<long long>(result.k_res)))
                    .set("bmax_ma", Json::number(result.bmax_ma))
                    .dump()
                    .c_str());
  } else {
    std::printf("%s: K_LB = %d, K_res = %d, B_max = %.2f mA (limit %.1f mA)\n",
                netlist->name().c_str(), result.k_lb, result.k_res, result.bmax_ma,
                kopt.bias_limit_ma);
  }
  return 0;
}

// Parses "name=v1,v2;name2=..." into sweep axes. Values that parse as
// JSON scalars (numbers, true/false) are used as such; anything else is a
// string value (e.g. refine_style=banded,buckets).
Status parse_sweep_axes(const std::string& spec, std::vector<SweepAxis>& out) {
  for (std::size_t pos = 0; pos < spec.size();) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::invalid_argument(
          "--sweep expects name=v1,v2,..., got '" + item + "'");
    }
    SweepAxis axis;
    axis.name = item.substr(0, eq);
    for (std::size_t vpos = eq + 1; vpos <= item.size();) {
      std::size_t vend = item.find(',', vpos);
      if (vend == std::string::npos) vend = item.size();
      const std::string value = item.substr(vpos, vend - vpos);
      vpos = vend + 1;
      if (value.empty()) continue;
      const auto parsed = Json::parse(value);
      axis.values.push_back(parsed.is_ok() && !parsed->is_null() &&
                                    !parsed->is_array() && !parsed->is_object()
                                ? *parsed
                                : Json::string(value));
    }
    if (axis.values.empty()) {
      return Status::invalid_argument("--sweep axis '" + axis.name +
                                      "' has no values");
    }
    out.push_back(std::move(axis));
  }
  if (out.empty()) {
    return Status::invalid_argument("--sweep expects at least one axis");
  }
  return Status::ok();
}

int cmd_sweep(const OptionsParser& options) {
  auto netlist = load_netlist(options);
  if (!netlist) {
    std::fprintf(stderr, "%s\n", netlist.status().message().c_str());
    return 1;
  }
  SweepOptions sweep;
  sweep.engine = options.get_string("engine");
  sweep.warm_neighbors = options.get_flag("warm-neighbors");
  if (Status st = parse_sweep_axes(options.get_string("sweep"), sweep.axes);
      !st) {
    std::fprintf(stderr, "%s\n", st.message().c_str());
    return 1;
  }
  const auto result = run_sweep(*netlist, sweep);
  if (!result) {
    std::fprintf(stderr, "%s\n", result.status().message().c_str());
    return 1;
  }
  std::printf("%s\n", result->to_json(netlist->name()).dump().c_str());
  return 0;
}

int cmd_plan(const OptionsParser& options) {
  auto netlist = load_netlist(options);
  if (!netlist) {
    std::fprintf(stderr, "%s\n", netlist.status().message().c_str());
    return 1;
  }
  const auto run = run_engine(*netlist, options);
  if (!run) {
    std::fprintf(stderr, "%s\n", run.status().message().c_str());
    return 1;
  }
  const Partition& partition = run->partition;
  const BiasPlan plan = make_bias_plan(*netlist, partition);
  const CouplingReport coupling = plan_coupling(*netlist, partition);
  if (options.get_flag("json")) {
    Json planes = Json::array();
    for (const PlaneBias& plane : plan.planes) {
      planes.append(Json::object()
                        .set("plane", Json::number(static_cast<long long>(plane.plane)))
                        .set("gates", Json::number(static_cast<long long>(plane.gates)))
                        .set("bias_ma", Json::number(plane.bias_ma))
                        .set("dummy_ma", Json::number(plane.dummy_ma))
                        .set("potential_mv", Json::number(plane.potential_mv)));
    }
    std::printf("%s\n",
                Json::object()
                    .set("circuit", Json::string(netlist->name()))
                    .set("supply_ma", Json::number(plan.supply_ma))
                    .set("stack_mv", Json::number(plan.stack_voltage_mv))
                    .set("icomp_ma", Json::number(plan.total_dummy_ma))
                    .set("pads_saved", Json::number(static_cast<long long>(plan.pads_saved())))
                    .set("coupling_pairs",
                         Json::number(static_cast<long long>(coupling.total_pairs)))
                    .set("planes", std::move(planes))
                    .dump()
                    .c_str());
  } else {
    std::fputs(format_bias_plan(plan).c_str(), stdout);
    std::fputs(format_coupling_report(coupling).c_str(), stdout);
    std::fputs(format_power_report(analyze_power(*netlist, partition)).c_str(),
               stdout);
  }
  return 0;
}

int cmd_floorplan(const OptionsParser& options) {
  auto netlist = load_netlist(options);
  if (!netlist) {
    std::fprintf(stderr, "%s\n", netlist.status().message().c_str());
    return 1;
  }
  const auto run = run_engine(*netlist, options);
  if (!run) {
    std::fprintf(stderr, "%s\n", run.status().message().c_str());
    return 1;
  }
  const Floorplan plan = build_floorplan(*netlist, run->partition);
  std::fputs(format_floorplan(*netlist, plan).c_str(), stdout);

  const std::string dir = options.get_string("dir");
  const std::string path = dir + "/" + netlist->name() + "_placed.def";
  std::ofstream file(path);
  file << def::write_def_placed(*netlist, {}, plan.x_um, plan.y_um);
  if (!file) {
    std::fprintf(stderr, "write failed: %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int cmd_timing(const OptionsParser& options) {
  auto netlist = load_netlist(options);
  if (!netlist) {
    std::fprintf(stderr, "%s\n", netlist.status().message().c_str());
    return 1;
  }
  // Timing with and without the partition's coupling-hop penalties, plus
  // the floorplan's wire delays.
  const auto run = run_engine(*netlist, options);
  if (!run) {
    std::fprintf(stderr, "%s\n", run.status().message().c_str());
    return 1;
  }
  const Floorplan floorplan = build_floorplan(*netlist, run->partition);
  const TimingReport flat = analyze_timing(*netlist);
  const TimingReport placed =
      analyze_timing(*netlist, {}, &floorplan, &run->partition);
  if (options.get_flag("json")) {
    std::printf("%s\n",
                Json::object()
                    .set("circuit", Json::string(netlist->name()))
                    .set("fmax_flat_ghz", Json::number(flat.fmax_ghz))
                    .set("fmax_partitioned_ghz", Json::number(placed.fmax_ghz))
                    .set("min_period_ps", Json::number(placed.min_period_ps))
                    .set("critical_coupling_ps",
                         Json::number(placed.critical_coupling_ps))
                    .set("critical_wire_ps", Json::number(placed.critical_wire_ps))
                    .dump()
                    .c_str());
  } else {
    std::printf("unpartitioned:\n");
    std::fputs(format_timing_report(flat).c_str(), stdout);
    std::printf("\npartitioned into K=%lld (wire + coupling aware):\n",
                options.get_int("planes"));
    std::fputs(format_timing_report(placed).c_str(), stdout);
    std::fputs(format_clock_skew_report(analyze_clock_skew(*netlist)).c_str(),
               stdout);
  }
  return 0;
}

int cmd_emit(const OptionsParser& options) {
  auto netlist = load_netlist(options);
  if (!netlist) {
    std::fprintf(stderr, "%s\n", netlist.status().message().c_str());
    return 1;
  }
  const std::string dir = options.get_string("dir");
  const std::string lef_path = dir + "/" + netlist->name() + ".lef";
  const std::string def_path = dir + "/" + netlist->name() + ".def";
  const std::string verilog_path = dir + "/" + netlist->name() + ".v";
  std::ofstream lef(lef_path);
  lef << def::write_lef(netlist->library());
  std::ofstream def_file(def_path);
  def_file << def::write_def(*netlist);
  std::ofstream verilog_file(verilog_path);
  verilog_file << write_verilog(*netlist);
  if (!lef || !def_file || !verilog_file) {
    std::fprintf(stderr, "write failed under %s\n", dir.c_str());
    return 1;
  }
  std::printf("wrote %s, %s and %s\n", lef_path.c_str(), def_path.c_str(),
              verilog_path.c_str());
  return 0;
}

int run(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 1;
  }
  const std::string command = argv[1];
  if (command == "list") return cmd_list();
  if (command == "--list-engines" || command == "list-engines") {
    const bool as_json = argc > 2 && std::string(argv[2]) == "--json";
    return cmd_list_engines(as_json);
  }

  OptionsParser options = make_parser(command);
  if (auto st = options.parse(argc - 2, argv + 2); !st) {
    std::fprintf(stderr, "%s\n%s", st.message().c_str(), options.usage().c_str());
    return 1;
  }
  if (options.get_flag("help")) {
    std::fputs(options.usage().c_str(), stdout);
    return 0;
  }
  if (command == "stats") return cmd_stats(options);
  if (command == "partition") return cmd_partition(options);
  if (command == "evaluate") return cmd_evaluate(options);
  if (command == "kres") return cmd_kres(options);
  if (command == "sweep") return cmd_sweep(options);
  if (command == "plan") return cmd_plan(options);
  if (command == "timing") return cmd_timing(options);
  if (command == "floorplan") return cmd_floorplan(options);
  if (command == "emit") return cmd_emit(options);
  std::fprintf(stderr, "unknown command '%s'\n%s", command.c_str(), kUsage);
  return 1;
}

}  // namespace
}  // namespace sfqpart

int main(int argc, char** argv) { return sfqpart::run(argc, argv); }
