// gen_scaled: emit a scaled synthetic SFQ netlist (10^5..10^7 gates) for
// capacity runs of the vcycle engine. Prints the realized statistics and
// optionally writes the structural Verilog.
#include <cstdio>
#include <fstream>
#include <string>

#include "gen/scaled.h"
#include "netlist/stats.h"
#include "netlist/validate.h"
#include "util/options.h"
#include "verilog/verilog_writer.h"

int main(int argc, char** argv) {
  using namespace sfqpart;
  OptionsParser parser(
      "gen_scaled: scaled synthetic netlist generator (see gen/scaled.h).\n"
      "Emits realized statistics on stdout; --out writes Verilog.");
  parser.add_int("gates", 100000, "target partitionable gate count");
  parser.add_double("rent", 0.65, "Rent exponent in (0, 1]");
  parser.add_int("max-fanout", 4, "logical fanout cap per signal");
  parser.add_double("buffer-fraction", 0.15, "share of 1-input JTL stages");
  parser.add_int("seed", 1, "generator seed");
  parser.add_string("name", "scaled", "module/netlist name");
  parser.add_string("out", "", "write structural Verilog to this path");
  parser.add_flag("validate", false, "run the netlist validator (slow at 10^7)");
  parser.add_flag("help", false, "print usage");
  if (auto st = parser.parse(argc - 1, argv + 1); !st) {
    std::fprintf(stderr, "gen_scaled: %s\n%s", st.message().c_str(),
                 parser.usage().c_str());
    return 2;
  }
  if (parser.get_flag("help")) {
    std::fputs(parser.usage().c_str(), stdout);
    return 0;
  }

  ScaledParams params;
  params.name = parser.get_string("name");
  params.num_gates = static_cast<int>(parser.get_int("gates"));
  params.rent_exponent = parser.get_double("rent");
  params.max_fanout = static_cast<int>(parser.get_int("max-fanout"));
  params.buffer_fraction = parser.get_double("buffer-fraction");
  params.seed = static_cast<std::uint64_t>(parser.get_int("seed"));

  const Netlist netlist = build_scaled(params);
  const NetlistStats stats = compute_stats(netlist);
  std::fputs(format_stats(netlist, stats).c_str(), stdout);

  if (parser.get_flag("validate")) {
    const ValidationReport report = validate(netlist);
    if (!report.ok()) {
      for (const std::string& issue : report.issues) {
        std::fprintf(stderr, "gen_scaled: %s\n", issue.c_str());
      }
      return 1;
    }
    std::puts("validate: ok");
  }

  const std::string out = parser.get_string("out");
  if (!out.empty()) {
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "gen_scaled: cannot open %s\n", out.c_str());
      return 1;
    }
    file << write_verilog(netlist);
    std::fprintf(stderr, "gen_scaled: wrote %s\n", out.c_str());
  }
  return 0;
}
