#!/usr/bin/env bash
# Sanitizer gate for the tier-1 suite: configure + build the "asan"
# preset (ASan + UBSan, see CMakePresets.json) and run every ctest
# under it. Any sanitizer report aborts the offending test, so a green
# run means the whole suite is clean of heap errors and UB.
#
#   tools/check.sh [extra ctest args...]
#
# Run from anywhere; the script cd's to the repo root. The ctest output
# is tee'd to build-asan/check.log; pipefail keeps the exit status of
# ctest itself, not tee's, so a red suite fails the script (and CI).
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

jobs="$(nproc 2>/dev/null || echo 2)"

cmake --preset asan
cmake --build --preset asan -j "$jobs"
ctest --preset asan -j "$jobs" "$@" 2>&1 | tee build-asan/check.log
