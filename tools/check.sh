#!/usr/bin/env bash
# Sanitizer gate for the tier-1 suite: configure + build a sanitizer
# preset (see CMakePresets.json) and run every ctest under it. Any
# sanitizer report aborts the offending test, so a green run means the
# whole suite is clean under that sanitizer.
#
#   tools/check.sh [asan|tsan] [extra ctest args...]
#
# The preset defaults to asan (ASan + UBSan: heap errors and UB). tsan
# runs ThreadSanitizer instead — the only sanitizer that can see
# cross-thread races in the fork-join executor, which ASan/UBSan cannot.
#
# Run from anywhere; the script cd's to the repo root. The ctest output
# is tee'd to build-<preset>/check.log; pipefail keeps the exit status
# of ctest itself, not tee's, so a red suite fails the script (and CI).
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

preset="asan"
if [[ $# -ge 1 && ( "$1" == "asan" || "$1" == "tsan" ) ]]; then
  preset="$1"
  shift
fi

jobs="$(nproc 2>/dev/null || echo 2)"

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$jobs"
ctest --preset "$preset" -j "$jobs" "$@" 2>&1 | tee "build-$preset/check.log"
