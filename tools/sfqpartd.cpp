// sfqpartd — the partition service daemon.
//
// Reads sfqpart.job.v1 lines on stdin, writes sfqpart.job_response.v1
// lines on stdout (completion order; correlate by id), and exits after
// EOF or a {"cmd": "shutdown"} line once every accepted job has been
// answered. See DESIGN.md section 11 and the README "Running as a
// service" quickstart.
//
//   $ printf '{"schema":"sfqpart.job.v1","id":"a","circuit":"ksa8"}\n' |
//       sfqpartd --workers 2
#include <cstdio>
#include <iostream>

#include "service/daemon.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace sfqpart;

  OptionsParser parser(
      "sfqpartd: long-lived partition service. JSON-lines jobs "
      "(sfqpart.job.v1) on stdin, one response per job on stdout.");
  parser.add_int("workers", 2, "worker threads executing jobs");
  parser.add_int("threads-per-job", 1,
                 "thread budget per job (caps the job's 'threads' option)");
  parser.add_int("queue-capacity", 64,
                 "bounded job queue; beyond this jobs are rejected "
                 "(queue_full)");
  parser.add_int("cache-capacity", 256, "result cache entries");
  parser.add_int("cache-shards", 8, "result cache shard count");
  parser.add_flag("no-certify", false,
                  "skip the server-side result certification that otherwise "
                  "runs once per executed job before the cache insert");
  parser.add_flag("help", false, "show this help");
  if (auto st = parser.parse(argc - 1, argv + 1); !st) {
    std::fprintf(stderr, "%s\n%s", st.message().c_str(),
                 parser.usage().c_str());
    return 1;
  }
  if (parser.get_flag("help")) {
    std::fputs(parser.usage().c_str(), stdout);
    return 0;
  }

  service::DaemonOptions options;
  options.workers = static_cast<int>(parser.get_int("workers"));
  options.threads_per_job = static_cast<int>(parser.get_int("threads-per-job"));
  options.queue_capacity =
      static_cast<std::size_t>(parser.get_int("queue-capacity"));
  options.cache_capacity =
      static_cast<std::size_t>(parser.get_int("cache-capacity"));
  options.cache_shards =
      static_cast<std::size_t>(parser.get_int("cache-shards"));
  options.certify = !parser.get_flag("no-certify");
  if (options.workers < 1) {
    std::fprintf(stderr, "sfqpartd: --workers must be >= 1\n");
    return 1;
  }

  service::Daemon daemon(options);
  daemon.serve(std::cin, std::cout);
  return 0;
}
