// Ablation A2: cost weights, gradient style, and refinement.
//
// The paper leaves c1..c4 unpublished ("constants which can be tuned");
// this bench sweeps each weight around the repo defaults to show the
// locality-vs-balance trade-off, compares the analytic gradients against
// the paper's printed equation 10, and measures what the optional greedy
// refinement adds.
#include <cstdio>

#include "bench_util.h"

namespace sfqpart::bench {
namespace {

constexpr int kPlanes = 5;

struct Variant {
  std::string label;
  SolverConfig options;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  auto add = [&out](const std::string& label, auto&& tweak) {
    Variant variant;
    variant.label = label;
    variant.options.num_planes = kPlanes;
    tweak(variant.options);
    out.push_back(std::move(variant));
  };
  add("defaults", [](SolverConfig&) {});
  add("c1 x4 (locality)", [](SolverConfig& o) { o.weights.c1 *= 4.0; });
  add("c1 /4", [](SolverConfig& o) { o.weights.c1 /= 4.0; });
  add("c2,c3 x4 (balance)", [](SolverConfig& o) {
    o.weights.c2 *= 4.0;
    o.weights.c3 *= 4.0;
  });
  add("c2,c3 /4", [](SolverConfig& o) {
    o.weights.c2 /= 4.0;
    o.weights.c3 /= 4.0;
  });
  add("c4 x4 (one-hot)", [](SolverConfig& o) { o.weights.c4 *= 4.0; });
  add("paper eq.10 grads", [](SolverConfig& o) {
    o.gradient_style = GradientStyle::kPaperEq10;
  });
  add("+ greedy refine", [](SolverConfig& o) { o.refine = true; });
  return out;
}

void print_ablation() {
  TablePrinter table({"Variant", "Circuit", "d<=1", "d<=2", "I_comp (%)",
                      "A_FS (%)", "discrete cost"});
  CsvWriter csv({"variant", "circuit", "d1", "d2", "icomp_pct", "afs_pct",
                 "cost"});
  for (const char* name : {"ksa4", "ksa8"}) {
    const Netlist netlist = build_mapped(name);
    for (const Variant& variant : variants()) {
      const SolverResult result =
          Solver(variant.options).run(netlist).value();
      const PartitionMetrics m = compute_metrics(netlist, result.partition);
      table.add_row({variant.label, name, fmt_percent(m.frac_within(1)),
                     fmt_percent(m.frac_within(2)), fmt_percent(m.icomp_frac(), 2),
                     fmt_percent(m.afs_frac(), 2),
                     fmt_double(result.discrete_total, 5)});
      csv.add_row({variant.label, name, fmt_double(m.frac_within(1), 4),
                   fmt_double(m.frac_within(2), 4),
                   fmt_double(100 * m.icomp_frac(), 2),
                   fmt_double(100 * m.afs_frac(), 2),
                   fmt_double(result.discrete_total, 6)});
    }
    table.add_separator();
  }
  std::printf("== Ablation A2: cost weights / gradient style / refinement ==\n");
  table.print();
  write_results_csv("ablation_weights", csv);
}

void BM_RefineOverhead(::benchmark::State& state) {
  const Netlist netlist = build_mapped("ksa8");
  SolverConfig options;
  options.num_planes = kPlanes;
  options.refine = state.range(0) != 0;
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(
        Solver(options).run(netlist)->discrete_total);
  }
}
BENCHMARK(BM_RefineOverhead)->Arg(0)->Arg(1)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace sfqpart::bench

int main(int argc, char** argv) {
  sfqpart::bench::print_ablation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
