// Table I reproduction: partition every suite circuit into K = 5 ground
// planes and report #gates, #connections, d<=1, d<=2, B_cir, B_max,
// I_comp%, A_cir, A_max, A_FS% -- ours next to the paper's published row.
// The AVERAGE row reproduces the section V claims (paper: d<=1 65.1%,
// d<=2 87.7%, I_comp 8.0%, A_FS 7.7%).
#include <cstdio>

#include "bench_util.h"
#include "netlist/stats.h"

namespace sfqpart::bench {
namespace {

constexpr int kPlanes = 5;

void print_table1() {
  TablePrinter ours({"Circuit", "#Gates", "#Conn", "d<=1", "d<=2", "B_cir (mA)",
                     "B_max (mA)", "I_comp (%)", "A_cir (mm2)", "A_max (mm2)",
                     "A_FS (%)", "wall (ms)", "iters"});
  TablePrinter compare({"Circuit", "d<=1 ours", "d<=1 paper", "d<=2 ours",
                        "d<=2 paper", "I_comp ours", "I_comp paper", "A_FS ours",
                        "A_FS paper", "gates ours/paper"});
  CsvWriter csv({"circuit", "gates", "connections", "d1", "d2", "bcir_ma",
                 "bmax_ma", "icomp_pct", "acir_mm2", "amax_mm2", "afs_pct",
                 "wall_ms", "iterations"});

  Averager d1;
  Averager d2;
  Averager icomp;
  Averager afs;
  Averager paper_d1;
  Averager paper_d2;
  Averager paper_icomp;
  Averager paper_afs;

  for (const SuiteEntry& entry : benchmark_suite()) {
    const Netlist netlist = build_mapped(entry);
    // The RunReport supplies the timing columns; attaching it does not
    // change the partition (observer non-perturbation, DESIGN.md 8.3).
    obs::RunReport report;
    const PartitionMetrics m = run_gd_metrics(netlist, kPlanes, 1, &report);
    const double wall_ms = report.stage_ms("run");
    const int iterations = report.result().iterations;
    ours.add_row({entry.name, std::to_string(m.num_gates),
                  std::to_string(m.num_connections), fmt_percent(m.frac_within(1)),
                  fmt_percent(m.frac_within(2)), fmt_double(m.total_bias_ma, 2),
                  fmt_double(m.bmax_ma, 2), fmt_percent(m.icomp_frac(), 2),
                  fmt_double(m.total_area_mm2(), 4), fmt_double(m.amax_mm2(), 4),
                  fmt_percent(m.afs_frac(), 2), fmt_double(wall_ms, 1),
                  std::to_string(iterations)});
    compare.add_row({entry.name, fmt_percent(m.frac_within(1)),
                     fmt_percent(entry.paper.d1), fmt_percent(m.frac_within(2)),
                     fmt_percent(entry.paper.d2), fmt_percent(m.icomp_frac(), 2),
                     fmt_percent(entry.paper.icomp, 2), fmt_percent(m.afs_frac(), 2),
                     fmt_percent(entry.paper.afs, 2),
                     str_format("%d / %d", m.num_gates, entry.paper.gates)});
    csv.add_row({entry.name, std::to_string(m.num_gates),
                 std::to_string(m.num_connections),
                 fmt_double(m.frac_within(1), 4), fmt_double(m.frac_within(2), 4),
                 fmt_double(m.total_bias_ma, 3), fmt_double(m.bmax_ma, 3),
                 fmt_double(100 * m.icomp_frac(), 2),
                 fmt_double(m.total_area_mm2(), 4), fmt_double(m.amax_mm2(), 4),
                 fmt_double(100 * m.afs_frac(), 2), fmt_double(wall_ms, 2),
                 std::to_string(iterations)});

    d1.add(m.frac_within(1));
    d2.add(m.frac_within(2));
    icomp.add(m.icomp_frac());
    afs.add(m.afs_frac());
    paper_d1.add(entry.paper.d1);
    paper_d2.add(entry.paper.d2);
    paper_icomp.add(entry.paper.icomp);
    paper_afs.add(entry.paper.afs);
  }

  ours.add_separator();
  ours.add_row({"AVERAGE", "", "", fmt_percent(d1.mean()), fmt_percent(d2.mean()),
                "", "", fmt_percent(icomp.mean(), 2), "", "",
                fmt_percent(afs.mean(), 2), "", ""});
  compare.add_separator();
  compare.add_row({"AVERAGE", fmt_percent(d1.mean()), fmt_percent(paper_d1.mean()),
                   fmt_percent(d2.mean()), fmt_percent(paper_d2.mean()),
                   fmt_percent(icomp.mean(), 2), fmt_percent(paper_icomp.mean(), 2),
                   fmt_percent(afs.mean(), 2), fmt_percent(paper_afs.mean(), 2), ""});

  std::printf("== Table I: partition results of benchmark circuits with K = %d ==\n",
              kPlanes);
  ours.print();
  std::printf("\n== Table I: ours vs paper (published averages: d<=1 65.1%%, "
              "d<=2 87.7%%, I_comp 8.0%%, A_FS 7.7%%) ==\n");
  compare.print();
  write_results_csv("table1", csv);
}

void BM_PartitionK5(::benchmark::State& state, const char* name) {
  const Netlist netlist = build_mapped(name);
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(run_gd(netlist, kPlanes).discrete_total);
  }
  state.counters["gates"] = netlist.num_partitionable_gates();
}

BENCHMARK_CAPTURE(BM_PartitionK5, ksa4, "ksa4")->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PartitionK5, ksa16, "ksa16")->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PartitionK5, c432, "c432")->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace sfqpart::bench

int main(int argc, char** argv) {
  sfqpart::bench::print_table1();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
