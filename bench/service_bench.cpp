// sfqpartd load generator: cold vs warm service throughput and latency.
//
// Drives an in-process Daemon the way the CI smoke drives the binary —
// multiple client threads submitting sfqpart.job.v1 lines — in two
// passes over the same job set:
//
//   cold: every job is a distinct (circuit, seed) key -> every job runs
//         an engine;
//   warm: the identical job set again -> every job is a cache hit, so
//         the measured cost is the service path alone (parse, validate,
//         canonicalize, lookup, respond).
//
// Prints the table, writes results/BENCH_service.json (jobs/sec and
// p50/p99 latency per pass, plus the counters proving the warm pass ran
// zero engines), then runs the google-benchmark timers.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/daemon.h"

namespace sfqpart::bench {
namespace {

constexpr int kClients = 4;
constexpr int kJobsPerClient = 8;
constexpr int kTotalJobs = kClients * kJobsPerClient;

std::string bench_job(int seed, const std::string& id) {
  return R"({"schema": "sfqpart.job.v1", "id": ")" + id +
         R"(", "circuit": "ksa8", "options": {"restarts": 1, "seed": )" +
         std::to_string(seed) + "}}";
}

struct PassResult {
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int hits = 0;
};

double percentile(std::vector<double> sorted, double fraction) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const auto index = static_cast<std::size_t>(
      fraction * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

// One pass: kClients threads each submit kJobsPerClient jobs and block on
// each response (closed-loop load). Seeds are unique across clients, so
// the same (client, job) pair maps to the same cache key in every pass.
PassResult run_pass(service::Daemon& daemon) {
  std::vector<std::vector<double>> latencies(kClients);
  std::vector<int> hit_counts(kClients, 0);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&daemon, &latencies, &hit_counts, c] {
      for (int j = 0; j < kJobsPerClient; ++j) {
        const int seed = c * kJobsPerClient + j;
        const std::string line =
            bench_job(seed, std::to_string(c) + "-" + std::to_string(j));
        const auto t0 = std::chrono::steady_clock::now();
        const std::string response = daemon.submit_and_wait(line);
        const auto t1 = std::chrono::steady_clock::now();
        latencies[static_cast<std::size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        if (response.find("\"cache\":\"hit\"") != std::string::npos) {
          ++hit_counts[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  const auto stop = std::chrono::steady_clock::now();

  PassResult result;
  result.seconds = std::chrono::duration<double>(stop - start).count();
  result.jobs_per_sec =
      result.seconds > 0.0 ? kTotalJobs / result.seconds : 0.0;
  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  result.p50_ms = percentile(all, 0.50);
  result.p99_ms = percentile(all, 0.99);
  for (const int hits : hit_counts) result.hits += hits;
  return result;
}

Json pass_json(const PassResult& pass) {
  return Json::object()
      .set("jobs", Json::number(static_cast<long long>(kTotalJobs)))
      .set("seconds", Json::number(pass.seconds))
      .set("jobs_per_sec", Json::number(pass.jobs_per_sec))
      .set("p50_ms", Json::number(pass.p50_ms))
      .set("p99_ms", Json::number(pass.p99_ms))
      .set("cache_hits", Json::number(static_cast<long long>(pass.hits)));
}

void run_load_generator() {
  service::DaemonOptions options;
  options.workers = 4;
  options.threads_per_job = 1;
  options.queue_capacity = 256;
  options.cache_capacity = 256;
  service::Daemon daemon(options);

  const PassResult cold = run_pass(daemon);
  const long long cold_engine_runs = daemon.engine_runs();
  const PassResult warm = run_pass(daemon);
  const long long warm_engine_runs = daemon.engine_runs() - cold_engine_runs;

  TablePrinter table({"pass", "jobs/s", "p50 ms", "p99 ms", "engine runs"});
  table.add_row({"cold", str_format("%.1f", cold.jobs_per_sec),
                 str_format("%.2f", cold.p50_ms),
                 str_format("%.2f", cold.p99_ms),
                 std::to_string(cold_engine_runs)});
  table.add_row({"warm", str_format("%.1f", warm.jobs_per_sec),
                 str_format("%.2f", warm.p50_ms),
                 str_format("%.2f", warm.p99_ms),
                 std::to_string(warm_engine_runs)});
  table.print();
  std::printf("warm speedup: %.1fx (p50), every warm job a cache hit: %s\n",
              warm.p50_ms > 0.0 ? cold.p50_ms / warm.p50_ms : 0.0,
              warm.hits == kTotalJobs ? "yes" : "NO");

  const service::CacheStats cache = daemon.cache_stats();
  Json doc = Json::object();
  doc.set("bench", Json::string("service"));
  doc.set("circuit", Json::string("ksa8"));
  doc.set("clients", Json::number(static_cast<long long>(kClients)));
  doc.set("jobs_per_client", Json::number(static_cast<long long>(kJobsPerClient)));
  doc.set("workers", Json::number(static_cast<long long>(options.workers)));
  doc.set("cold", pass_json(cold));
  doc.set("warm", pass_json(warm));
  doc.set("cold_engine_runs", Json::number(cold_engine_runs));
  doc.set("warm_engine_runs", Json::number(warm_engine_runs));
  doc.set("cache", Json::object()
                       .set("hits", Json::number(cache.hits))
                       .set("misses", Json::number(cache.misses))
                       .set("evictions", Json::number(cache.evictions)));
  write_results_json("BENCH_service", doc);
}

// Steady-state warm latency of one service round trip: parse + validate +
// canonicalize + cache hit + response. This is the daemon's O(1) path.
void BM_WarmSubmit(::benchmark::State& state) {
  service::DaemonOptions options;
  options.workers = 1;
  service::Daemon daemon(options);
  const std::string line = bench_job(1, "bm");
  daemon.submit_and_wait(line);  // prime the cache
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(daemon.submit_and_wait(line));
  }
}
BENCHMARK(BM_WarmSubmit)->Unit(::benchmark::kMicrosecond);

// Job-line validation alone (no execution): the cost a rejected or
// malformed request imposes on the daemon.
void BM_ValidateInvalid(::benchmark::State& state) {
  service::DaemonOptions options;
  options.workers = 1;
  service::Daemon daemon(options);
  const std::string line =
      R"({"schema": "sfqpart.job.v1", "circuit": "ksa4",
          "options": {"planes": 0}})";
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(daemon.submit_and_wait(line));
  }
}
BENCHMARK(BM_ValidateInvalid)->Unit(::benchmark::kMicrosecond);

}  // namespace
}  // namespace sfqpart::bench

int main(int argc, char** argv) {
  sfqpart::bench::run_load_generator();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
