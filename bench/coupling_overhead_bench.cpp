// Extension bench: second-order cost of coupling insertion.
//
// The paper counts coupling pairs but stops before the feedback effect:
// inserted TXDRV/TXRCV cells draw bias current *on their own planes*, so
// materializing the links perturbs the bias balance the partition just
// optimized. This bench measures, per circuit at K = 5: pairs inserted,
// gate-count growth, added bias, and the I_comp drift before vs after
// insertion (post-insertion metrics recomputed on the implemented
// netlist).
#include <cstdio>

#include "bench_util.h"
#include "core/feedback.h"
#include "recycling/insertion.h"

namespace sfqpart::bench {
namespace {

constexpr int kPlanes = 5;

void print_overhead() {
  TablePrinter table({"Circuit", "pairs", "gates before", "gates after",
                      "bias added (mA)", "I_comp before", "I_comp implemented",
                      "I_comp w/ feedback", "d<=1 before"});
  CsvWriter csv({"circuit", "pairs", "gates_before", "gates_after",
                 "bias_added_ma", "icomp_before_pct", "icomp_after_pct",
                 "icomp_feedback_pct"});
  for (const char* name : {"ksa4", "ksa8", "mult4", "c499"}) {
    const Netlist netlist = build_mapped(name);
    const SolverResult result = run_gd(netlist, kPlanes);
    const PartitionMetrics before = compute_metrics(netlist, result.partition);
    const CouplingInsertion inserted =
        apply_coupling_insertion(netlist, result.partition);
    const PartitionMetrics after =
        compute_metrics(inserted.netlist, inserted.partition);
    double added = 0.0;
    for (const double b : inserted.added_bias_ma) added += b;

    // Closing the loop: re-partition with the coupling bias folded into
    // the gate weights (core/feedback.h).
    FeedbackOptions feedback;
    feedback.base.num_planes = kPlanes;
    const FeedbackResult closed = partition_with_coupling_feedback(netlist, feedback);

    table.add_row({name, std::to_string(inserted.pairs_inserted),
                   std::to_string(before.num_gates), std::to_string(after.num_gates),
                   fmt_double(added, 2), fmt_percent(before.icomp_frac(), 2),
                   fmt_percent(after.icomp_frac(), 2),
                   fmt_percent(closed.icomp_final, 2),
                   fmt_percent(before.frac_within(1))});
    csv.add_row({name, std::to_string(inserted.pairs_inserted),
                 std::to_string(before.num_gates), std::to_string(after.num_gates),
                 fmt_double(added, 3), fmt_double(100 * before.icomp_frac(), 2),
                 fmt_double(100 * after.icomp_frac(), 2),
                 fmt_double(100 * closed.icomp_final, 2)});
  }
  std::printf("== Extension: bias/area feedback of coupling insertion (K = %d) ==\n",
              kPlanes);
  table.print();
  write_results_csv("coupling_overhead", csv);
}

void BM_Insertion(::benchmark::State& state) {
  const Netlist netlist = build_mapped("ksa8");
  const SolverResult result = run_gd(netlist, kPlanes);
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(
        apply_coupling_insertion(netlist, result.partition).pairs_inserted);
  }
}
BENCHMARK(BM_Insertion)->Unit(::benchmark::kMicrosecond);

}  // namespace
}  // namespace sfqpart::bench

int main(int argc, char** argv) {
  sfqpart::bench::print_overhead();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
