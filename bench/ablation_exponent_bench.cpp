// Ablation A1: the distance exponent. The paper uses |l_i1 - l_i2|^4 "to
// model the sharp increment of a connection cost with the increase in
// distance". This bench re-partitions with exponent 2 and compares the
// resulting distance histograms: the quartic cost should suppress the
// long-distance tail (d >= 2) harder, at similar d = 0 locality.
#include <cstdio>

#include "bench_util.h"

namespace sfqpart::bench {
namespace {

constexpr int kPlanes = 5;

PartitionMetrics run_with_exponent(const Netlist& netlist, int exponent) {
  SolverConfig options;
  options.num_planes = kPlanes;
  options.weights.distance_exponent = exponent;
  return compute_metrics(
      netlist, Solver(options).run(netlist)->partition);
}

void print_ablation() {
  TablePrinter table({"Circuit", "exp", "d=0", "d<=1", "d<=2", "tail d>=3",
                      "I_comp (%)", "A_FS (%)"});
  CsvWriter csv({"circuit", "exponent", "d0", "d1", "d2", "tail", "icomp_pct",
                 "afs_pct"});
  for (const char* name : {"ksa8", "mult4", "c432"}) {
    const Netlist netlist = build_mapped(name);
    for (const int exponent : {2, 4}) {
      const PartitionMetrics m = run_with_exponent(netlist, exponent);
      const double tail = 1.0 - m.frac_within(2);
      table.add_row({name, std::to_string(exponent), fmt_percent(m.frac_within(0)),
                     fmt_percent(m.frac_within(1)), fmt_percent(m.frac_within(2)),
                     fmt_percent(tail), fmt_percent(m.icomp_frac(), 2),
                     fmt_percent(m.afs_frac(), 2)});
      csv.add_row({name, std::to_string(exponent), fmt_double(m.frac_within(0), 4),
                   fmt_double(m.frac_within(1), 4), fmt_double(m.frac_within(2), 4),
                   fmt_double(tail, 4), fmt_double(100 * m.icomp_frac(), 2),
                   fmt_double(100 * m.afs_frac(), 2)});
    }
  }
  std::printf("== Ablation A1: distance exponent 2 vs 4 (paper: power of 4) ==\n");
  table.print();
  write_results_csv("ablation_exponent", csv);
}

void BM_ExponentCost(::benchmark::State& state) {
  const Netlist netlist = build_mapped("ksa8");
  SolverConfig options;
  options.num_planes = kPlanes;
  options.weights.distance_exponent = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(
        Solver(options).run(netlist)->discrete_total);
  }
}
BENCHMARK(BM_ExponentCost)->Arg(2)->Arg(4)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace sfqpart::bench

int main(int argc, char** argv) {
  sfqpart::bench::print_ablation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
