// Table III reproduction: smallest plane count K_res with B_max <= 100 mA
// (the current a bias pad sustains, [23]) for the 12 larger circuits,
// against the lower bound K_LB = ceil(B_cir / 100 mA). Also quantifies the
// section V claim that recycling replaces ceil(B_cir/100mA) bias lines
// with ceil(B_max/100mA) ("save 30 bias lines" on a 2.5 A chip).
#include <cstdio>

#include "bench_util.h"
#include "core/kres_search.h"
#include "recycling/bias_plan.h"

namespace sfqpart::bench {
namespace {

constexpr double kPadLimitMa = 100.0;

// Published K_LB / K_res pairs for the comparison column.
struct PaperRow {
  const char* name;
  int k_lb, k_res;
  double dhalf, icomp, afs;
};
constexpr PaperRow kPaper[] = {
    {"ksa8", 3, 3, 0.959, 0.0840, 0.1014},   {"ksa16", 6, 7, 0.849, 0.1720, 0.1613},
    {"ksa32", 14, 17, 0.774, 0.2474, 0.2458}, {"mult4", 3, 3, 0.910, 0.0720, 0.0837},
    {"mult8", 13, 15, 0.775, 0.2087, 0.2145}, {"id4", 5, 6, 0.926, 0.1155, 0.1070},
    {"id8", 28, 40, 0.753, 0.4317, 0.4363},   {"c432", 11, 14, 0.830, 0.1673, 0.1869},
    {"c499", 9, 11, 0.796, 0.2044, 0.2222},   {"c1355", 9, 11, 0.807, 0.2051, 0.2185},
    {"c1908", 15, 17, 0.782, 0.1488, 0.1592}, {"c3540", 32, 50, 0.771, 0.4501, 0.4551},
};

void print_table3() {
  TablePrinter table({"Circuit", "K_LB/K_res", "d<=K/2", "B_max (mA)",
                      "I_comp (%)", "A_max (mm2)", "A_FS (%)", "pads saved",
                      "paper K_LB/K_res", "paper d<=K/2"});
  CsvWriter csv({"circuit", "k_lb", "k_res", "dhalf", "bmax_ma", "icomp_pct",
                 "amax_mm2", "afs_pct", "pads_saved"});

  for (const PaperRow& paper : kPaper) {
    const Netlist netlist = build_mapped(paper.name);
    KresOptions options;
    options.bias_limit_ma = kPadLimitMa;
    // One restart per K keeps the search loop close to the paper's flow.
    options.base.restarts = 2;
    const KresResult kres = find_min_planes(netlist, options).value();
    if (!kres.found) {
      std::printf("  %s: no feasible K found!\n", paper.name);
      continue;
    }
    const PartitionMetrics m = compute_metrics(netlist, kres.result.partition);
    const BiasPlan plan = make_bias_plan(netlist, kres.result.partition);
    table.add_row({paper.name, str_format("%d / %d", kres.k_lb, kres.k_res),
                   fmt_percent(m.frac_within(m.half_k())), fmt_double(m.bmax_ma, 2),
                   fmt_percent(m.icomp_frac(), 2), fmt_double(m.amax_mm2(), 4),
                   fmt_percent(m.afs_frac(), 2), std::to_string(plan.pads_saved()),
                   str_format("%d / %d", paper.k_lb, paper.k_res),
                   fmt_percent(paper.dhalf)});
    csv.add_row({paper.name, std::to_string(kres.k_lb), std::to_string(kres.k_res),
                 fmt_double(m.frac_within(m.half_k()), 4), fmt_double(m.bmax_ma, 3),
                 fmt_double(100 * m.icomp_frac(), 2), fmt_double(m.amax_mm2(), 4),
                 fmt_double(100 * m.afs_frac(), 2), std::to_string(plan.pads_saved())});
  }

  std::printf("== Table III: partition results for %.0f mA maximum supplied "
              "current ==\n", kPadLimitMa);
  table.print();
  write_results_csv("table3", csv);
}

void BM_KresSearch(::benchmark::State& state, const char* name) {
  const Netlist netlist = build_mapped(name);
  KresOptions options;
  options.bias_limit_ma = kPadLimitMa;
  options.base.restarts = 1;
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(find_min_planes(netlist, options).value().k_res);
  }
}

BENCHMARK_CAPTURE(BM_KresSearch, ksa8, "ksa8")->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_KresSearch, id4, "id4")->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace sfqpart::bench

int main(int argc, char** argv) {
  sfqpart::bench::print_table3();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
