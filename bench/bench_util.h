// Shared helpers for the paper-table benches.
//
// Every bench binary prints its table(s) on stdout (same rows/columns as
// the paper, AVERAGE row included where the paper quotes one), writes a
// CSV copy under results/, and then runs its google-benchmark timers.
#pragma once

#include <filesystem>
#include <string>

#include <benchmark/benchmark.h>

#include "core/partitioner.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"
#include "metrics/report.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

namespace sfqpart::bench {

// One gradient-descent partitioning run with the repo's default options.
inline PartitionResult run_gd(const Netlist& netlist, int num_planes,
                              std::uint64_t seed = 1) {
  PartitionOptions options;
  options.num_planes = num_planes;
  options.seed = seed;
  return partition_netlist(netlist, options);
}

inline PartitionMetrics run_gd_metrics(const Netlist& netlist, int num_planes,
                                       std::uint64_t seed = 1) {
  return compute_metrics(netlist, run_gd(netlist, num_planes, seed).partition);
}

// Writes the CSV next to the binary's working directory under results/.
inline void write_results_csv(const std::string& name, const CsvWriter& csv) {
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const std::string path = "results/" + name + ".csv";
  if (auto status = csv.write_file(path); status) {
    std::printf("[csv] wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "[csv] %s\n", status.message().c_str());
  }
}

// Relative deviation as a "+12%"-style string for paper-vs-ours columns.
inline std::string rel_delta(double ours, double paper) {
  if (paper == 0.0) return "n/a";
  return str_format("%+.0f%%", 100.0 * (ours - paper) / paper);
}

}  // namespace sfqpart::bench
