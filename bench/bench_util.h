// Shared helpers for the paper-table benches.
//
// Every bench binary prints its table(s) on stdout (same rows/columns as
// the paper, AVERAGE row included where the paper quotes one), writes a
// CSV copy under results/, and then runs its google-benchmark timers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <benchmark/benchmark.h>

#include "core/solver.h"
#include "gen/suite.h"
#include "metrics/partition_metrics.h"
#include "metrics/report.h"
#include "obs/observer.h"
#include "obs/run_report.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/table.h"

namespace sfqpart::bench {

// One gradient-descent partitioning run with the repo's default options
// (serial Solver, bit-identical to the pre-facade free functions). Attach
// an obs::RunReport as `observer` to collect convergence curves and stage
// wall times without changing the result.
inline SolverResult run_gd(const Netlist& netlist, int num_planes,
                              std::uint64_t seed = 1,
                              obs::SolverObserver* observer = nullptr) {
  SolverConfig config;
  config.num_planes = num_planes;
  config.seed = seed;
  config.observer = observer;
  auto result = Solver(std::move(config)).run(netlist);
  if (!result) {
    std::fprintf(stderr, "bench: %s\n", result.status().message().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline PartitionMetrics run_gd_metrics(const Netlist& netlist, int num_planes,
                                       std::uint64_t seed = 1,
                                       obs::SolverObserver* observer = nullptr) {
  return compute_metrics(
      netlist, run_gd(netlist, num_planes, seed, observer).partition);
}

// Writes the CSV next to the binary's working directory under results/.
inline void write_results_csv(const std::string& name, const CsvWriter& csv) {
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const std::string path = "results/" + name + ".csv";
  if (auto status = csv.write_file(path); status) {
    std::printf("[csv] wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "[csv] %s\n", status.message().c_str());
  }
}

// Writes a JSON document under results/ (the BENCH_* artifacts).
inline void write_results_json(const std::string& name, const Json& doc) {
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const std::string path = "results/" + name + ".json";
  std::ofstream file(path);
  file << doc.dump() << "\n";
  if (file) {
    std::printf("[json] wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "[json] write failed: %s\n", path.c_str());
  }
}

// Relative deviation as a "+12%"-style string for paper-vs-ours columns.
inline std::string rel_delta(double ours, double paper) {
  if (paper == 0.0) return "n/a";
  return str_format("%+.0f%%", 100.0 * (ours - paper) / paper);
}

}  // namespace sfqpart::bench
