// Extension bench: operating-frequency cost of ground-plane partitioning.
//
// Section III-B3 of the paper notes that a connection between non-adjacent
// planes needs several chained coupling circuits, which "decreases the
// operating frequency of the circuit". This bench quantifies that: static
// timing of ksa8/mult4 with the coupling hop model, sweeping K, plus the
// implemented (TX-cells-inserted) netlist for comparison.
#include <cstdio>

#include "bench_util.h"
#include "recycling/insertion.h"
#include "timing/timing.h"

namespace sfqpart::bench {
namespace {

void print_fmax() {
  TablePrinter table({"Circuit", "K", "Fmax flat (GHz)", "Fmax hop-model (GHz)",
                      "Fmax implemented (GHz)", "coupling on crit. path (ps)"});
  CsvWriter csv({"circuit", "k", "fmax_flat_ghz", "fmax_model_ghz",
                 "fmax_impl_ghz", "crit_coupling_ps"});
  for (const char* name : {"ksa8", "mult4"}) {
    const Netlist netlist = build_mapped(name);
    const TimingReport flat = analyze_timing(netlist);
    for (const int k : {2, 4, 6, 8, 10}) {
      const SolverResult result = run_gd(netlist, k);
      const TimingReport modeled =
          analyze_timing(netlist, {}, nullptr, &result.partition);
      const CouplingInsertion inserted =
          apply_coupling_insertion(netlist, result.partition);
      const TimingReport implemented =
          analyze_timing(inserted.netlist, {}, nullptr, &inserted.partition);
      table.add_row({name, std::to_string(k), fmt_double(flat.fmax_ghz, 1),
                     fmt_double(modeled.fmax_ghz, 1),
                     fmt_double(implemented.fmax_ghz, 1),
                     fmt_double(modeled.critical_coupling_ps, 1)});
      csv.add_row({name, std::to_string(k), fmt_double(flat.fmax_ghz, 2),
                   fmt_double(modeled.fmax_ghz, 2),
                   fmt_double(implemented.fmax_ghz, 2),
                   fmt_double(modeled.critical_coupling_ps, 1)});
    }
    table.add_separator();
  }
  std::printf("== Extension: Fmax vs number of ground planes "
              "(paper section III-B3's frequency argument) ==\n");
  table.print();
  write_results_csv("fmax_vs_k", csv);
}

void BM_TimingAnalysis(::benchmark::State& state, const char* name) {
  const Netlist netlist = build_mapped(name);
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(analyze_timing(netlist).min_period_ps);
  }
}
BENCHMARK_CAPTURE(BM_TimingAnalysis, ksa8, "ksa8")->Unit(::benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_TimingAnalysis, c3540, "c3540")->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace sfqpart::bench

int main(int argc, char** argv) {
  sfqpart::bench::print_fmax();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
