// Parallel-engine scaling: wall-clock of the restarts=8 Solver
// configuration across thread counts, with a bit-identity check against
// the serial run at every point. Prints the table, writes
// results/BENCH_parallel_scaling.json (the perf-trajectory artifact this
// repo tracks from PR 1 onward), then runs the google-benchmark timers.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "bench_util.h"
#include "core/solver.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace sfqpart::bench {
namespace {

constexpr const char* kCircuit = "ksa32";
constexpr int kRestarts = 8;
constexpr std::uint64_t kSeed = 1;

SolverResult run_solver(const Netlist& netlist, int threads,
                           double* wall_ms,
                           obs::SolverObserver* observer = nullptr) {
  SolverConfig config;
  config.restarts = kRestarts;
  config.seed = kSeed;
  config.threads = threads;
  config.observer = observer;
  const Solver solver(std::move(config));
  const auto start = std::chrono::steady_clock::now();
  auto result = solver.run(netlist);
  const auto stop = std::chrono::steady_clock::now();
  *wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  if (!result) {
    std::fprintf(stderr, "solver: %s\n", result.status().message().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void print_scaling() {
  const Netlist netlist = build_mapped(kCircuit);
  double warmup_ms = 0.0;
  run_solver(netlist, 1, &warmup_ms);  // touch caches before timing

  double serial_ms = 0.0;
  const SolverResult serial = run_solver(netlist, 1, &serial_ms);

  TablePrinter table({"threads", "wall ms", "speedup", "identical to serial"});
  Json runs = Json::array();
  for (const int threads : {1, 2, 4, 8}) {
    double wall_ms = serial_ms;
    SolverResult result = serial;
    if (threads > 1) result = run_solver(netlist, threads, &wall_ms);
    const bool identical =
        result.partition.plane_of == serial.partition.plane_of &&
        result.discrete_total == serial.discrete_total &&
        result.winning_restart == serial.winning_restart;
    const double speedup = wall_ms > 0.0 ? serial_ms / wall_ms : 0.0;
    table.add_row({std::to_string(threads), str_format("%.1f", wall_ms),
                   str_format("%.2fx", speedup), identical ? "yes" : "NO"});
    // threads is the request; pool_threads the workers the Solver spawns
    // for it; hardware_threads what the machine can actually run — kept
    // per row so oversubscribed points read as such.
    runs.append(Json::object()
                    .set("threads", Json::number(static_cast<long long>(threads)))
                    .set("pool_threads",
                         Json::number(static_cast<long long>(
                             threads == 0 ? ThreadPool::hardware_concurrency()
                                          : threads)))
                    .set("hardware_threads",
                         Json::number(static_cast<long long>(
                             ThreadPool::hardware_concurrency())))
                    .set("wall_ms", Json::number(wall_ms))
                    .set("speedup", Json::number(speedup))
                    .set("discrete_total", Json::number(result.discrete_total))
                    .set("winning_restart",
                         Json::number(static_cast<long long>(result.winning_restart)))
                    .set("identical_to_serial", Json::boolean(identical)));
  }
  std::printf("== Parallel restart engine: %s, restarts=%d, seed=%llu ==\n",
              kCircuit, kRestarts,
              static_cast<unsigned long long>(kSeed));
  table.print();

  // One extra observed run: the RunReport must not perturb the result
  // (bit-identity against the unobserved serial run) and its per-stage
  // breakdown lands in the artifact. The timed runs above stay
  // observer-free so the headline numbers measure the disabled path.
  obs::RunReport report;
  double observed_ms = 0.0;
  const SolverResult observed = run_solver(netlist, 1, &observed_ms, &report);
  const bool observed_identical =
      observed.partition.plane_of == serial.partition.plane_of &&
      observed.discrete_total == serial.discrete_total &&
      observed.winning_restart == serial.winning_restart;
  std::printf("observed run identical to serial: %s "
              "(stage ms: run %.1f, optimize %.1f, harden %.1f)\n",
              observed_identical ? "yes" : "NO", report.stage_ms("run"),
              report.stage_ms("optimize"), report.stage_ms("harden"));

  const Json doc =
      Json::object()
          .set("bench", Json::string("parallel_scaling"))
          .set("circuit", Json::string(kCircuit))
          .set("restarts", Json::number(static_cast<long long>(kRestarts)))
          .set("seed", Json::number(static_cast<long long>(kSeed)))
          .set("hardware_threads",
               Json::number(static_cast<long long>(ThreadPool::hardware_concurrency())))
          .set("runs", std::move(runs))
          .set("observed_run",
               Json::object()
                   .set("identical_to_serial", Json::boolean(observed_identical))
                   .set("wall_ms", Json::number(observed_ms))
                   .set("report", report.to_json()));
  write_results_json("BENCH_parallel_scaling", doc);
}

void BM_SolverThreads(::benchmark::State& state) {
  const Netlist netlist = build_mapped(kCircuit);
  SolverConfig config;
  config.restarts = kRestarts;
  config.seed = kSeed;
  config.threads = static_cast<int>(state.range(0));
  const Solver solver(std::move(config));
  for (auto _ : state) {
    const auto result = solver.run(netlist);
    ::benchmark::DoNotOptimize(result.is_ok() ? result->discrete_total : 0.0);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SolverThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(::benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

}  // namespace
}  // namespace sfqpart::bench

int main(int argc, char** argv) {
  sfqpart::bench::print_scaling();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
