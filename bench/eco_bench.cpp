// ECO bench: measures the incremental re-partition path against a
// scratch V-cycle on a mutated scaled netlist, and writes
// results/BENCH_eco.json.
//
// Protocol (core/delta.h): build a scaled netlist, partition it cold
// with the vcycle engine, mutate ~1% of the gates (gen/mutate.h), build
// the warm start from the parent partition, and run engine "eco" with
// compare_scratch so the engine itself times the scratch re-solve it is
// replacing. The run fails (exit 1) unless the eco result certifies and
// meets the --min-speedup / --max-drift-pct bars, which is what the CI
// eco-smoke job leans on.
//
// Plain main() like capacity_bench: a million-gate run is too slow for a
// google-benchmark timer loop, and the artifact is the JSON.
//
// Flags:
//   --gates 1000000 --planes 5 --threads 0 --seed 1 --rent 0.65
//   --mutate 0.01             fraction of gates removed AND added
//   --halo 2                  BFS hops around the dirty seeds
//   --min-speedup 5 --max-drift-pct 1.0   acceptance bars (<=0 disables)
//   --smoke                   10^5-gate run (advisory CI)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "core/certify.h"
#include "core/delta.h"
#include "core/engine.h"
#include "core/vcycle.h"
#include "gen/mutate.h"
#include "gen/scaled.h"
#include "util/options.h"

namespace sfqpart::bench {
namespace {

int run(int argc, char** argv) {
  OptionsParser parser(
      "eco_bench: incremental ECO re-partition vs scratch V-cycle on a\n"
      "mutated scaled netlist; writes results/BENCH_eco.json.");
  parser.add_int("gates", 1000000, "target gate count of the parent netlist");
  parser.add_int("planes", 5, "ground planes K");
  parser.add_int("threads", 0, "worker threads (0 = all hardware threads)");
  parser.add_int("seed", 1, "generator, solver and mutation seed");
  parser.add_double("rent", 0.65, "Rent exponent of the generated netlist");
  parser.add_double("mutate", 0.01,
                    "fraction of partitionable gates removed and added");
  parser.add_int("halo", 2, "BFS hops of clean gates eco may still move");
  parser.add_double("min-speedup", 5.0,
                    "fail unless eco is at least this much faster (<=0 off)");
  parser.add_double("max-drift-pct", 1.0,
                    "fail if eco cost exceeds scratch by more (<=0 off)");
  parser.add_flag("smoke", false, "10^5-gate run (advisory CI job)");
  parser.add_flag("help", false, "print usage");
  if (auto st = parser.parse(argc - 1, argv + 1); !st) {
    std::fprintf(stderr, "eco_bench: %s\n%s", st.message().c_str(),
                 parser.usage().c_str());
    return 2;
  }
  if (parser.get_flag("help")) {
    std::fputs(parser.usage().c_str(), stdout);
    return 0;
  }

  using Clock = std::chrono::steady_clock;
  const bool smoke = parser.get_flag("smoke");
  const int num_gates =
      smoke ? 100000 : static_cast<int>(parser.get_int("gates"));
  const int num_planes = static_cast<int>(parser.get_int("planes"));
  const int threads = static_cast<int>(parser.get_int("threads"));
  const std::uint64_t seed = parser.get_int("seed") < 1
                                 ? 1
                                 : static_cast<std::uint64_t>(
                                       parser.get_int("seed"));

  ScaledParams gen;
  gen.name = "eco" + std::to_string(num_gates);
  gen.num_gates = num_gates;
  gen.rent_exponent = parser.get_double("rent");
  gen.seed = seed;
  const Netlist before = build_scaled(gen);
  std::printf("[gen] %s: %d gates\n", before.name().c_str(),
              before.num_gates());

  // Parent solve: the partition the ECO inherits.
  VcycleOptions parent_options;
  parent_options.seed = seed;
  parent_options.threads = threads;
  const auto parent_start = Clock::now();
  const VcycleResult parent =
      vcycle_partition(before, num_planes, parent_options);
  const double parent_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - parent_start)
          .count();
  std::printf("[parent] vcycle %.0f ms, F=%.1f\n", parent_ms,
              parent.discrete_total);

  MutateParams mutation;
  mutation.remove_fraction = parser.get_double("mutate");
  mutation.add_fraction = parser.get_double("mutate");
  mutation.seed = seed;
  MutateStats stats;
  const Netlist after = mutate_netlist(before, mutation, &stats);
  const NetlistDelta delta = compute_delta(before, after);
  std::printf("[mutate] -%d +%d gates; delta: %zu added, %zu removed, "
              "%zu changed, %d dirty seeds\n",
              stats.removed, stats.added, delta.added.size(),
              delta.removed.size(), delta.changed.size(), delta.dirty());

  const InitialPartition warm =
      warm_start_from(parent.partition, before, after);

  auto engine = EngineRegistry::create("eco");
  if (!engine) {
    std::fprintf(stderr, "eco_bench: %s\n", engine.status().message().c_str());
    return 1;
  }
  EngineContext context;
  context.num_planes = num_planes;
  context.seed = seed;
  context.threads = threads;
  context.halo = static_cast<int>(parser.get_int("halo"));
  context.compare_scratch = true;
  context.warm_start = &warm;
  auto eco = (*engine)->run(after, context);
  if (!eco) {
    std::fprintf(stderr, "eco_bench: %s\n", eco.status().message().c_str());
    return 1;
  }

  // Independent re-check: the ECO output must certify like any other
  // engine result (no constraints in this bench).
  CertifyExpectation expect;
  expect.terms = eco->discrete_terms;
  expect.total = eco->discrete_total;
  const CertifyReport cert = certify_partition(
      after, eco->partition, num_planes, context.weights, &expect, nullptr);
  const bool certified = cert.valid();

  const double eco_ms = eco->counter("eco_ms");
  const double scratch_ms = eco->counter("scratch_ms");
  const double speedup = eco->counter("speedup_vs_scratch");
  const double drift_pct = eco->counter("cost_drift_pct");
  std::printf("[eco] %.0f ms vs scratch %.0f ms: %.1fx, drift %+.3f%%, "
              "certified=%s\n",
              eco_ms, scratch_ms, speedup, drift_pct,
              certified ? "yes" : "no");

  Json doc = Json::object()
                 .set("schema", Json::string("sfqpart.bench_eco.v1"))
                 .set("circuit", Json::string(after.name()))
                 .set("gates", Json::number(static_cast<long long>(after.num_gates())))
                 .set("planes", Json::number(static_cast<long long>(num_planes)))
                 .set("seed", Json::number(static_cast<long long>(seed)))
                 .set("mutate_fraction",
                      Json::number(parser.get_double("mutate")))
                 .set("removed", Json::number(static_cast<long long>(stats.removed)))
                 .set("added", Json::number(static_cast<long long>(stats.added)))
                 .set("dirty_seeds", Json::number(eco->counter("dirty_seeds")))
                 .set("dirty_gates", Json::number(eco->counter("dirty_gates")))
                 .set("halo", Json::number(static_cast<long long>(context.halo)))
                 .set("parent_ms", Json::number(parent_ms))
                 .set("scratch_ms", Json::number(scratch_ms))
                 .set("eco_ms", Json::number(eco_ms))
                 .set("speedup_vs_scratch", Json::number(speedup))
                 .set("cost_drift_pct", Json::number(drift_pct))
                 .set("eco_total", Json::number(eco->discrete_total))
                 .set("certified", Json::boolean(certified));
  write_results_json("BENCH_eco", doc);

  if (!certified) {
    std::fprintf(stderr, "eco_bench: certification failed (%s): %s\n",
                 certify_verdict_name(cert.verdict), cert.message.c_str());
    return 1;
  }
  const double min_speedup = parser.get_double("min-speedup");
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "eco_bench: speedup %.2fx below bar %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  const double max_drift = parser.get_double("max-drift-pct");
  if (max_drift > 0.0 && drift_pct > max_drift) {
    std::fprintf(stderr, "eco_bench: cost drift %+.3f%% above bar %.3f%%\n",
                 drift_pct, max_drift);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sfqpart::bench

int main(int argc, char** argv) { return sfqpart::bench::run(argc, argv); }
