// Gradient hot-path throughput: eval-only and eval+gradient rates of the
// CostModel on the largest generated circuits, in two series per circuit:
//
//  * kernel tiers — pinned to one CPU, every SIMD tier this build+CPU
//    offers (scalar / avx2 / avx512) at 1 thread; `speedup_vs_scalar` of
//    the active tier is the same-session A/B the kernel layer is judged
//    on (cross-session absolute rates on this shared 1-core runner swing
//    with neighbor load and are NOT comparable), and for id8 the active
//    rate is also ratioed against the frozen pre-SIMD baseline;
//  * thread series — unpinned 1/2/4/8-thread profile with an A/B against
//    the pre-CSR serial-scatter reference engine, with cpus_allowed /
//    pool_threads / hardware_threads provenance so a flat series on a
//    masked runner reads as saturation, not regression.
//
// Prints the tables, writes results/BENCH_gradient.json (the perf
// artifact future PRs are gated against: `speedup_vs_scatter` on the
// largest circuit at 8 threads must not regress below 1.5x), then runs
// the google-benchmark timers. The scatter reference is measured through
// the plain (workspace-allocating) overloads because that is exactly how
// the pre-CSR optimizer called it — fresh scratch every iteration.
//
// `--smoke` runs a short CI gate instead: c3540 only, brief windows, no
// JSON and no google-benchmark pass. It exits 1 when eval_grad_per_s at
// the max thread count falls below 0.9x the serial figure — the exact
// multi-thread inversion the fork-join executor erased (the 0.1 slack
// absorbs shared-runner noise, not the 0.78x regression the gate hunts).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "bench_util.h"
#include "core/simd/dispatch.h"
#include "core/soft_assign.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sfqpart::bench {
namespace {

constexpr std::uint64_t kSeed = 1;
constexpr int kPlanes = 5;
// Largest circuits of the generated suite (Table I order): the id8
// divider and the c3540-class random logic.
const char* const kCircuits[] = {"id8", "c3540"};

struct Workload {
  std::string circuit;
  PartitionProblem problem;
  Matrix w;
};

Workload make_workload(const std::string& circuit) {
  Workload load;
  load.circuit = circuit;
  const Netlist netlist = build_mapped(circuit);
  load.problem = PartitionProblem::from_netlist(netlist, kPlanes);
  Rng rng(kSeed);
  load.w = random_soft_assignment(load.problem.num_gates, kPlanes, rng);
  return load;
}

// CPUs this process may run on (the pinned-profile provenance: a
// container or taskset mask below hardware_concurrency explains away a
// flat thread series).
int cpus_allowed() {
#if defined(__linux__)
  cpu_set_t mask;
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    return CPU_COUNT(&mask);
  }
#endif
  return ThreadPool::hardware_concurrency();
}

// Pins the calling (measurement) thread to the first allowed CPU for the
// single-thread series, so tier-vs-tier ratios are not polluted by
// migrations; restore_affinity undoes it before the multi-thread series.
#if defined(__linux__)
cpu_set_t saved_affinity_mask;
bool saved_affinity_valid = false;

void pin_to_first_cpu() {
  cpu_set_t mask;
  if (sched_getaffinity(0, sizeof(mask), &mask) != 0) return;
  saved_affinity_mask = mask;
  saved_affinity_valid = true;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &mask)) {
      cpu_set_t one;
      CPU_ZERO(&one);
      CPU_SET(cpu, &one);
      sched_setaffinity(0, sizeof(one), &one);
      return;
    }
  }
}

void restore_affinity() {
  if (saved_affinity_valid) {
    sched_setaffinity(0, sizeof(saved_affinity_mask), &saved_affinity_mask);
  }
}
#else
void pin_to_first_cpu() {}
void restore_affinity() {}
#endif

// Evals/second of `body` (which runs one evaluation) over one window of
// `window_s` seconds.
template <typename Body>
double one_window_per_s(const Body& body, double window_s = 0.2) {
  int evals = 0;
  const auto start = std::chrono::steady_clock::now();
  std::chrono::duration<double> elapsed{};
  do {
    body();
    ++evals;
    elapsed = std::chrono::steady_clock::now() - start;
  } while (elapsed.count() < window_s);
  return evals / elapsed.count();
}

// One thread-count measurement: five trials, each timing eval, gather and
// scatter in *adjacent* windows so a trial's gather/scatter pair sees the
// same machine conditions. Rates are best-of (scheduler noise on a shared
// box only ever biases a window low); the speedup is the median of the
// per-trial paired ratios, which is robust to the CPU-steal swings that
// make rates from windows seconds apart incomparable.
struct RatePoint {
  double eval = 0.0;
  double gather = 0.0;
  double scatter = 0.0;
  double ratio = 0.0;  // median over trials of (gather / scatter)
};

template <typename EvalBody, typename GatherBody, typename ScatterBody>
RatePoint measure_point(const EvalBody& eval_body,
                        const GatherBody& gather_body,
                        const ScatterBody& scatter_body) {
  RatePoint point;
  std::vector<double> ratios;
  for (int trial = 0; trial < 9; ++trial) {
    const double eval_rate = one_window_per_s(eval_body);
    const double gather_rate = one_window_per_s(gather_body);
    const double scatter_rate = one_window_per_s(scatter_body);
    point.eval = std::max(point.eval, eval_rate);
    point.gather = std::max(point.gather, gather_rate);
    point.scatter = std::max(point.scatter, scatter_rate);
    if (scatter_rate > 0.0) ratios.push_back(gather_rate / scatter_rate);
  }
  std::sort(ratios.begin(), ratios.end());
  if (!ratios.empty()) point.ratio = ratios[ratios.size() / 2];
  return point;
}

// Single-thread per-kernel-tier series (the tentpole's headline figure):
// eval and eval+grad rates of every tier this build+CPU offers, measured
// pinned to one CPU, plus the active/scalar ratio. The scalar tier is the
// pre-SIMD hot path verbatim (same source, same flags), so
// `speedup_vs_scalar` IS the SIMD speedup over the gather baseline.
Json bench_kernel_tiers(const Workload& load, double* speedup_out) {
  CostModel model(load.problem, CostWeights{});
  Matrix grad;
  CostModel::Workspace workspace;

  const simd::Tier ambient = simd::dispatch_info().active;
  std::vector<simd::Tier> tiers = {simd::Tier::kScalar};
  for (const simd::Tier t : {simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    if (simd::tier_available(t)) tiers.push_back(t);
  }

  pin_to_first_cpu();
  TablePrinter table({"kernel tier", "eval/s", "eval+grad/s", "vs scalar"});
  Json rows = Json::array();
  double scalar_rate = 0.0;
  double active_rate = 0.0;
  for (const simd::Tier tier : tiers) {
    simd::force_tier_for_testing(tier);
    double eval_rate = 0.0;
    double grad_rate = 0.0;
    for (int trial = 0; trial < 9; ++trial) {
      eval_rate = std::max(eval_rate, one_window_per_s([&] {
        ::benchmark::DoNotOptimize(model.evaluate(load.w, workspace).f1);
      }));
      grad_rate = std::max(grad_rate, one_window_per_s([&] {
        ::benchmark::DoNotOptimize(
            model.evaluate_with_gradient(load.w, grad, workspace).f1);
      }));
    }
    if (tier == simd::Tier::kScalar) scalar_rate = grad_rate;
    if (tier == ambient) active_rate = grad_rate;
    const double ratio = scalar_rate > 0.0 ? grad_rate / scalar_rate : 0.0;
    table.add_row({simd::tier_name(tier), str_format("%.0f", eval_rate),
                   str_format("%.0f", grad_rate),
                   str_format("%.2fx", ratio)});
    rows.append(Json::object()
                    .set("tier", Json::string(simd::tier_name(tier)))
                    .set("eval_per_s", Json::number(eval_rate))
                    .set("eval_grad_per_s", Json::number(grad_rate))
                    .set("speedup_vs_scalar", Json::number(ratio)));
  }
  simd::force_tier_for_testing(ambient);
  simd::reset_dispatch_for_testing();
  restore_affinity();

  const double speedup = scalar_rate > 0.0 ? active_rate / scalar_rate : 0.0;
  if (speedup_out != nullptr) *speedup_out = speedup;
  std::printf("== Kernel tiers: %s, 1 thread pinned (active: %s) ==\n",
              load.circuit.c_str(), simd::tier_name(ambient));
  table.print();
  std::printf("active-tier eval+grad speedup vs scalar: %.2fx\n", speedup);
  return Json::object()
      .set("active", Json::string(simd::tier_name(ambient)))
      .set("detected", Json::string(simd::tier_name(simd::dispatch_info().detected)))
      .set("pinned", Json::boolean(true))
      .set("tiers", std::move(rows))
      .set("active_eval_grad_per_s", Json::number(active_rate))
      .set("speedup_vs_scalar", Json::number(speedup));
}

// The last pre-SIMD commit's pinned single-thread gather figure on this
// runner (id8, 4315 gates, 5001 edges, K=5) — frozen so the kernel
// layer's before/after lives in one artifact. The scalar tier should sit
// near this number; the active tier's ratio against it is
// `speedup_vs_pre_simd`.
constexpr double kPreSimdId8EvalGradPerS = 14476.79;

Json bench_circuit(const Workload& load) {
  CostModel model(load.problem, CostWeights{});
  Matrix grad;
  CostModel::Workspace workspace;

  // Bit-identity A/B before timing anything: the gather engine must match
  // the scatter reference exactly, with and without a pool.
  Matrix gather_grad;
  Matrix scatter_grad;
  CostModel::Workspace check_ws;
  model.set_gradient_engine(GradientEngine::kCsrGather);
  const CostTerms gather_terms =
      model.evaluate_with_gradient(load.w, gather_grad, check_ws);
  model.set_gradient_engine(GradientEngine::kSerialScatter);
  const CostTerms scatter_terms =
      model.evaluate_with_gradient(load.w, scatter_grad, check_ws);
  model.set_gradient_engine(GradientEngine::kCsrGather);
  const bool identical = gather_grad == scatter_grad &&
                         gather_terms.f1 == scatter_terms.f1 &&
                         gather_terms.f2 == scatter_terms.f2 &&
                         gather_terms.f3 == scatter_terms.f3 &&
                         gather_terms.f4 == scatter_terms.f4;

  TablePrinter table({"path", "threads", "evals/s", "vs scatter@same"});
  Json runs = Json::array();
  double speedup = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    model.set_thread_pool(threads > 1 ? &pool : nullptr);

    const RatePoint point = measure_point(
        [&] {
          ::benchmark::DoNotOptimize(model.evaluate(load.w, workspace).f1);
        },
        [&] {
          model.set_gradient_engine(GradientEngine::kCsrGather);
          ::benchmark::DoNotOptimize(
              model.evaluate_with_gradient(load.w, grad, workspace).f1);
        },
        // Pre-CSR reference: serial scatter + separate passes, transient
        // workspace per call (what the optimizer loop used to do).
        [&] {
          model.set_gradient_engine(GradientEngine::kSerialScatter);
          ::benchmark::DoNotOptimize(
              model.evaluate_with_gradient(load.w, grad).f1);
        });
    model.set_gradient_engine(GradientEngine::kCsrGather);

    if (threads == 8) speedup = point.ratio;
    table.add_row({"eval", std::to_string(threads),
                   str_format("%.0f", point.eval), "-"});
    table.add_row({"eval+grad gather", std::to_string(threads),
                   str_format("%.0f", point.gather),
                   str_format("%.2fx", point.ratio)});
    table.add_row({"eval+grad scatter", std::to_string(threads),
                   str_format("%.0f", point.scatter), "1.00x"});
    // Per-run thread provenance: `threads` is the requested row label,
    // pool_threads the workers the pool actually spawned for it, and
    // hardware_threads the machine's concurrency — so an 8-thread row on
    // a 1-core runner is readable as oversubscription, not a typo.
    runs.append(Json::object()
                    .set("threads", Json::number(static_cast<long long>(threads)))
                    .set("pool_threads",
                         Json::number(static_cast<long long>(
                             threads > 1 ? pool.thread_count() : 1)))
                    .set("hardware_threads",
                         Json::number(static_cast<long long>(
                             ThreadPool::hardware_concurrency())))
                    .set("eval_per_s", Json::number(point.eval))
                    .set("eval_grad_per_s", Json::number(point.gather))
                    .set("eval_grad_scatter_per_s", Json::number(point.scatter))
                    .set("gather_vs_scatter", Json::number(point.ratio)));
  }
  model.set_thread_pool(nullptr);
  std::printf("== Gradient hot path: %s (%d gates, %zu edges, K=%d) ==\n",
              load.circuit.c_str(), load.problem.num_gates,
              load.problem.edges.size(), kPlanes);
  table.print();
  std::printf("gather identical to scatter: %s; 8-thread eval+grad speedup "
              "vs scatter: %.2fx\n",
              identical ? "yes" : "NO", speedup);

  return Json::object()
      .set("circuit", Json::string(load.circuit))
      .set("gates", Json::number(static_cast<long long>(load.problem.num_gates)))
      .set("edges",
           Json::number(static_cast<long long>(load.problem.edges.size())))
      .set("planes", Json::number(static_cast<long long>(kPlanes)))
      .set("identical_to_scatter", Json::boolean(identical))
      .set("speedup_vs_scatter", Json::number(speedup))
      .set("runs", std::move(runs));
}

// Frozen "before" figures: the last numbers the mutex/condvar FIFO pool
// (one heap-allocated std::function per chunk, full queue round-trip per
// reduction) produced on this repo's 1-core reference runner, kept in the
// artifact so the executor rebuild's before/after is one file.
Json fifo_baseline() {
  const auto run = [](long long threads, double eval, double gather,
                      double scatter) {
    return Json::object()
        .set("threads", Json::number(threads))
        .set("eval_per_s", Json::number(eval))
        .set("eval_grad_per_s", Json::number(gather))
        .set("eval_grad_scatter_per_s", Json::number(scatter));
  };
  return Json::object()
      .set("executor", Json::string("fifo_pool"))
      .set("hardware_threads", Json::number(1LL))
      .set("id8", Json::array()
                      .append(run(1, 23373.34306, 12551.28181, 7706.069019))
                      .append(run(8, 14834.76168, 9826.65982, 6517.530149)))
      .set("c3540", Json::array()
                        .append(run(1, 21688.89614, 10991.26176, 7024.465719))
                        .append(run(8, 14509.05415, 9241.808572, 6709.815849)));
}

void print_gradient_bench() {
  Json circuits = Json::array();
  for (const char* circuit : kCircuits) {
    const Workload load = make_workload(circuit);
    double tier_speedup = 0.0;
    Json kernels = bench_kernel_tiers(load, &tier_speedup);
    const Json* active = kernels.find("active_eval_grad_per_s");
    const double active_rate = active != nullptr ? active->as_number() : 0.0;
    if (load.circuit == "id8") {
      const double vs_pre_simd = active_rate / kPreSimdId8EvalGradPerS;
      std::printf("id8 1-thread eval+grad vs frozen pre-SIMD baseline "
                  "(%.0f/s): %.2fx\n",
                  kPreSimdId8EvalGradPerS, vs_pre_simd);
      kernels.set("pre_simd_eval_grad_per_s",
                  Json::number(kPreSimdId8EvalGradPerS));
      kernels.set("speedup_vs_pre_simd", Json::number(vs_pre_simd));
    }
    Json entry = bench_circuit(load);
    entry.set("kernels", std::move(kernels));
    circuits.append(std::move(entry));
  }
  const Json doc =
      Json::object()
          .set("bench", Json::string("gradient"))
          .set("seed", Json::number(static_cast<long long>(kSeed)))
          .set("hardware_threads",
               Json::number(
                   static_cast<long long>(ThreadPool::hardware_concurrency())))
          .set("cpus_allowed",
               Json::number(static_cast<long long>(cpus_allowed())))
          .set("baseline_fifo", fifo_baseline())
          .set("circuits", std::move(circuits));
  write_results_json("BENCH_gradient", doc);
}

// CI smoke gate: short gather-rate measurement at 1 thread and at the max
// bench thread count. Returns 0 when the multi-thread figure holds at or
// above 0.9x serial, 1 on the inversion.
int run_smoke() {
  const Workload load = make_workload("c3540");
  CostModel model(load.problem, CostWeights{});
  Matrix grad;
  CostModel::Workspace workspace;
  const auto gather_rate = [&] {
    double best = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
      best = std::max(best, one_window_per_s(
                                [&] {
                                  ::benchmark::DoNotOptimize(
                                      model.evaluate_with_gradient(
                                               load.w, grad, workspace)
                                          .f1);
                                },
                                0.05));
    }
    return best;
  };

  const double serial = gather_rate();
  double threaded = 0.0;
  {
    ThreadPool pool(8);
    model.set_thread_pool(&pool);
    threaded = gather_rate();
    model.set_thread_pool(nullptr);
  }
  const bool ok = threaded >= 0.9 * serial;
  std::printf("smoke c3540 eval_grad_per_s: 1 thread %.0f, 8 threads %.0f "
              "(%.2fx) -> %s\n",
              serial, threaded, serial > 0.0 ? threaded / serial : 0.0,
              ok ? "OK" : "FAIL (multi-thread inversion)");
  return ok ? 0 : 1;
}

void BM_EvalGradient(::benchmark::State& state) {
  static const Workload load = make_workload("c3540");
  const int threads = static_cast<int>(state.range(0));
  CostModel model(load.problem, CostWeights{});
  ThreadPool pool(threads);
  if (threads > 1) model.set_thread_pool(&pool);
  Matrix grad;
  CostModel::Workspace workspace;
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(
        model.evaluate_with_gradient(load.w, grad, workspace).f1);
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_EvalGradient)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(::benchmark::kMicrosecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_EvalOnly(::benchmark::State& state) {
  static const Workload load = make_workload("c3540");
  CostModel model(load.problem, CostWeights{});
  CostModel::Workspace workspace;
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(model.evaluate(load.w, workspace).f1);
  }
}
BENCHMARK(BM_EvalOnly)->Unit(::benchmark::kMicrosecond);

}  // namespace
}  // namespace sfqpart::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return sfqpart::bench::run_smoke();
    }
  }
  sfqpart::bench::print_gradient_bench();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
