// Capacity bench for the vcycle engine: partitions scaled synthetic
// netlists (gen/scaled.h) at 10^5..10^6+ gates and records throughput
// (gates/sec), per-level wall time, and peak RSS into
// results/BENCH_capacity.json.
//
// Unlike the paper-table benches this is a plain main(): a million-gate
// run is far too slow to repeat under the google-benchmark harness, and
// the artifact of interest is the structured JSON, not a timer loop.
//
// Flags:
//   --sizes 100000,1000000   comma-separated gate targets
//   --planes 5 --threads 0 --seed 1
//   --verbose-levels         embed the full RunReport (per-iteration
//                            curves, per-restart samples) per run; the
//                            default emits a compact per-level summary
//                            so the artifact stays a few hundred lines
//   --smoke                  single 10^5 run + validity/budget asserts
//                            (advisory CI: .github/workflows/ci.yml)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/vcycle.h"
#include "obs/run_report.h"
#include "gen/scaled.h"
#include "util/mem.h"
#include "util/options.h"

namespace sfqpart::bench {
namespace {

// Fails the bench (exit 1) unless the partition is valid: every
// partitionable gate on a plane in [0, K), every interface gate left on
// the shared ground plane.
void assert_valid(const Netlist& netlist, const Partition& partition,
                  int num_planes) {
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const int plane = partition.plane(g);
    const bool partitionable = netlist.is_partitionable(g);
    const bool ok = partitionable ? plane >= 0 && plane < num_planes
                                  : plane == kUnassignedPlane;
    if (!ok) {
      std::fprintf(stderr,
                   "capacity_bench: gate %d (%s) has plane %d "
                   "(partitionable=%d, K=%d)\n",
                   g, netlist.gate(g).name.c_str(), plane, partitionable,
                   num_planes);
      std::exit(1);
    }
  }
}

int run(int argc, char** argv) {
  OptionsParser parser(
      "capacity_bench: vcycle engine capacity runs on scaled synthetic\n"
      "netlists; writes results/BENCH_capacity.json.");
  parser.add_string("sizes", "100000,1000000",
                    "comma-separated target gate counts");
  parser.add_int("planes", 5, "ground planes K");
  parser.add_int("threads", 0, "worker threads (0 = all hardware threads)");
  parser.add_int("seed", 1, "generator and solver seed");
  parser.add_double("rent", 0.65, "Rent exponent of the generated netlists");
  parser.add_flag("verbose-levels", false,
                  "embed the full per-iteration RunReport in each run "
                  "(default: compact per-level summary only)");
  parser.add_flag("smoke", false,
                  "single 10^5-gate run with validity + wall-budget asserts");
  parser.add_int("smoke-budget-sec", 120, "wall budget for --smoke");
  parser.add_flag("help", false, "print usage");
  if (auto st = parser.parse(argc - 1, argv + 1); !st) {
    std::fprintf(stderr, "capacity_bench: %s\n%s", st.message().c_str(),
                 parser.usage().c_str());
    return 2;
  }
  if (parser.get_flag("help")) {
    std::fputs(parser.usage().c_str(), stdout);
    return 0;
  }

  const bool smoke = parser.get_flag("smoke");
  const int num_planes = static_cast<int>(parser.get_int("planes"));
  std::vector<long long> sizes;
  if (smoke) {
    sizes.push_back(100000);
  } else {
    for (const std::string& field :
         split(parser.get_string("sizes"), ",")) {
      sizes.push_back(std::atoll(field.c_str()));
    }
  }

  // A/B: every size runs once per uncoarsening refinement flavor, so the
  // artifact carries the banded-vs-buckets cost/throughput trade-off.
  struct StyleCase {
    VcycleRefineStyle style;
    const char* name;
  };
  const StyleCase styles[] = {{VcycleRefineStyle::kBanded, "banded"},
                              {VcycleRefineStyle::kBuckets, "buckets"}};

  Json runs = Json::array();
  for (const long long size : sizes) {
    using Clock = std::chrono::steady_clock;

    ScaledParams params;
    params.name = "scaled" + std::to_string(size);
    params.num_gates = static_cast<int>(size);
    params.rent_exponent = parser.get_double("rent");
    params.seed = parser.get_int("seed") < 1
                      ? 1
                      : static_cast<std::uint64_t>(parser.get_int("seed"));
    const auto gen_start = Clock::now();
    const Netlist netlist = build_scaled(params);
    const double gen_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - gen_start)
            .count();

    int partitionable = 0;
    for (GateId g = 0; g < netlist.num_gates(); ++g) {
      if (netlist.is_partitionable(g)) ++partitionable;
    }

    for (const StyleCase& flavor : styles) {
      obs::RunReport report;
      VcycleOptions options;
      options.seed = params.seed;
      options.threads = static_cast<int>(parser.get_int("threads"));
      options.observer = &report;
      options.refine_style = flavor.style;
      const auto solve_start = Clock::now();
      const VcycleResult result =
          vcycle_partition(netlist, num_planes, options);
      const double solve_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - solve_start)
              .count();

      const double gates_per_sec =
          solve_ms > 0.0 ? partitionable / (solve_ms / 1000.0) : 0.0;
      const double rss_mb = peak_rss_mb();
      std::printf(
          "%-14s %-8s G=%-9d levels=%-3d gen=%8.1f ms  solve=%9.1f ms  "
          "%10.0f gates/s  cost=%.6f  peak_rss=%.0f MB  names=%.1f MB\n",
          params.name.c_str(), flavor.name, partitionable, result.levels,
          gen_ms, solve_ms, gates_per_sec, result.discrete_total, rss_mb,
          static_cast<double>(netlist.name_table_bytes()) / (1024.0 * 1024.0));

      assert_valid(netlist, result.partition, num_planes);
      if (smoke && solve_ms / 1000.0 >
                       static_cast<double>(parser.get_int("smoke-budget-sec"))) {
        std::fprintf(stderr,
                     "capacity_bench: smoke run took %.1f s (budget %lld s)\n",
                     solve_ms / 1000.0, parser.get_int("smoke-budget-sec"));
        return 1;
      }

      // Default: a compact per-level summary (vertex/edge counts and
      // stage wall times — one line per level). The full RunReport with
      // per-iteration curves made the artifact ~25k lines; it is still
      // available behind --verbose-levels for deep dives.
      Json doc;
      if (parser.get_flag("verbose-levels")) {
        doc = report.to_json();
      } else {
        Json levels = Json::array();
        for (const obs::LevelEvent& level : report.levels()) {
          levels.append(
              Json::object()
                  .set("level", Json::number(static_cast<long long>(level.level)))
                  .set("vertices",
                       Json::number(static_cast<long long>(level.num_vertices)))
                  .set("edges", Json::number(level.num_edges))
                  .set("coarsen_ms", Json::number(level.coarsen_ms))
                  .set("refine_ms", Json::number(level.refine_ms))
                  .set("refine_moves",
                       Json::number(static_cast<long long>(level.refine_moves))));
        }
        doc = Json::object()
                  .set("levels", std::move(levels))
                  .set("coarse_solve_ms", Json::number(report.stage_ms("coarse_solve")))
                  .set("run_ms", Json::number(report.stage_ms("run")));
      }
      runs.append(Json::object()
                      .set("target_gates", Json::number(size))
                      .set("refine_style", Json::string(flavor.name))
                      .set("gates", Json::number(static_cast<long long>(partitionable)))
                      .set("edges", Json::number(
                                        static_cast<long long>(netlist.unique_edges().size())))
                      .set("planes", Json::number(static_cast<long long>(num_planes)))
                      .set("levels", Json::number(static_cast<long long>(result.levels)))
                      .set("coarse_gates",
                           Json::number(static_cast<long long>(result.coarse_gates)))
                      .set("refine_moves", Json::number(result.refine_moves))
                      .set("discrete_total", Json::number(result.discrete_total))
                      .set("gen_ms", Json::number(gen_ms))
                      .set("solve_ms", Json::number(solve_ms))
                      .set("gates_per_sec", Json::number(gates_per_sec))
                      .set("peak_rss_mb", Json::number(rss_mb))
                      .set("name_table_bytes",
                           Json::number(static_cast<long long>(
                               netlist.name_table_bytes())))
                      .set("name_index_bytes",
                           Json::number(static_cast<long long>(
                               netlist.name_index_bytes())))
                      // What the old unordered_map<string_view, GateId>
                      // index cost for the same gate count (measured
                      // libstdc++ node 56 B + bucket pointer 8 B per
                      // entry), so the artifact carries the diet's delta.
                      .set("name_index_map_bytes_before",
                           Json::number(static_cast<long long>(
                               static_cast<std::size_t>(netlist.num_gates()) *
                               64)))
                      .set("report", std::move(doc)));
    }
  }

  write_results_json("BENCH_capacity",
                     Json::object()
                         .set("bench", Json::string("capacity"))
                         .set("engine", Json::string("vcycle"))
                         .set("threads", Json::number(parser.get_int("threads")))
                         .set("runs", std::move(runs)));
  return 0;
}

}  // namespace
}  // namespace sfqpart::bench

int main(int argc, char** argv) { return sfqpart::bench::run(argc, argv); }
