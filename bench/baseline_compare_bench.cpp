// Ablation A3: the paper's gradient-descent partitioner vs classic
// alternatives (section IV-A argues classic K-way partitioning cannot
// encode the ground-plane constraints). Expected shape: FM wins or ties on
// raw cut count (its own objective) but loses on the distance-weighted
// metrics; layered slicing is strong on locality but rigid; random is the
// floor.
#include <cstdio>

#include "baseline/annealing.h"
#include "baseline/fm_kway.h"
#include "baseline/layered_partition.h"
#include "baseline/random_partition.h"
#include "bench_util.h"
#include "core/multilevel.h"

namespace sfqpart::bench {
namespace {

constexpr int kPlanes = 5;

void add_rows(TablePrinter& table, CsvWriter& csv, const char* circuit,
              const char* method, const Netlist& netlist,
              const Partition& partition) {
  const PartitionMetrics m = compute_metrics(netlist, partition);
  const int cut = cut_count(netlist, partition);
  table.add_row({circuit, method, fmt_percent(m.frac_within(1)),
                 fmt_percent(m.frac_within(2)), std::to_string(cut),
                 fmt_percent(m.icomp_frac(), 2), fmt_percent(m.afs_frac(), 2)});
  csv.add_row({circuit, method, fmt_double(m.frac_within(1), 4),
               fmt_double(m.frac_within(2), 4), std::to_string(cut),
               fmt_double(100 * m.icomp_frac(), 2),
               fmt_double(100 * m.afs_frac(), 2)});
}

void print_comparison() {
  TablePrinter table({"Circuit", "Method", "d<=1", "d<=2", "cut", "I_comp (%)",
                      "A_FS (%)"});
  CsvWriter csv({"circuit", "method", "d1", "d2", "cut", "icomp_pct", "afs_pct"});
  for (const char* name : {"ksa8", "mult4", "c499"}) {
    const Netlist netlist = build_mapped(name);
    add_rows(table, csv, name, "gradient-descent", netlist,
             run_gd(netlist, kPlanes).partition);
    add_rows(table, csv, name, "multilevel+gd", netlist,
             multilevel_partition(netlist, kPlanes).partition);
    add_rows(table, csv, name, "annealing", netlist,
             anneal_partition(netlist, kPlanes).partition);
    add_rows(table, csv, name, "layered", netlist,
             layered_partition(netlist, kPlanes));
    FmOptions fm;
    fm.max_passes = 6;
    add_rows(table, csv, name, "fm-kway", netlist,
             fm_kway_partition(netlist, kPlanes, fm).partition);
    add_rows(table, csv, name, "random", netlist,
             random_partition(netlist, kPlanes, 1));
    table.add_separator();
  }
  std::printf("== Ablation A3: partitioner vs classic baselines (K = %d) ==\n",
              kPlanes);
  table.print();
  write_results_csv("baseline_compare", csv);
}

void BM_Method(::benchmark::State& state, const char* method) {
  const Netlist netlist = build_mapped("ksa8");
  const std::string which = method;
  for (auto _ : state) {
    if (which == "gd") {
      ::benchmark::DoNotOptimize(run_gd(netlist, kPlanes).discrete_total);
    } else if (which == "layered") {
      ::benchmark::DoNotOptimize(layered_partition(netlist, kPlanes).num_planes);
    } else if (which == "fm") {
      ::benchmark::DoNotOptimize(fm_kway_partition(netlist, kPlanes).final_cut);
    } else {
      ::benchmark::DoNotOptimize(random_partition(netlist, kPlanes).num_planes);
    }
  }
}
BENCHMARK_CAPTURE(BM_Method, gd, "gd")->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Method, layered, "layered")->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Method, fm, "fm")->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Method, random, "random")->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace sfqpart::bench

int main(int argc, char** argv) {
  sfqpart::bench::print_comparison();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
