// Ablation A3: the paper's gradient-descent partitioner vs classic
// alternatives (section IV-A argues classic K-way partitioning cannot
// encode the ground-plane constraints). Expected shape: FM wins or ties on
// raw cut count (its own objective) but loses on the distance-weighted
// metrics; layered slicing is strong on locality but rigid; random is the
// floor. Both the comparison table and the timing benchmarks loop over the
// EngineRegistry, so newly registered engines show up without new code.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/engine.h"

namespace sfqpart::bench {
namespace {

constexpr int kPlanes = 5;

void add_rows(TablePrinter& table, CsvWriter& csv, const char* circuit,
              const std::string& engine, const Netlist& netlist,
              const Partition& partition) {
  const PartitionMetrics m = compute_metrics(netlist, partition);
  const int cut = cut_count(netlist, partition);
  table.add_row({circuit, engine, fmt_percent(m.frac_within(1)),
                 fmt_percent(m.frac_within(2)), std::to_string(cut),
                 fmt_percent(m.icomp_frac(), 2), fmt_percent(m.afs_frac(), 2)});
  csv.add_row({circuit, engine, fmt_double(m.frac_within(1), 4),
               fmt_double(m.frac_within(2), 4), std::to_string(cut),
               fmt_double(100 * m.icomp_frac(), 2),
               fmt_double(100 * m.afs_frac(), 2)});
}

void print_comparison() {
  TablePrinter table({"Circuit", "Engine", "d<=1", "d<=2", "cut", "I_comp (%)",
                      "A_FS (%)"});
  CsvWriter csv({"circuit", "engine", "d1", "d2", "cut", "icomp_pct", "afs_pct"});
  EngineContext context;
  context.num_planes = kPlanes;
  for (const char* name : {"ksa8", "mult4", "c499"}) {
    const Netlist netlist = build_mapped(name);
    for (const std::string& engine_name : EngineRegistry::names()) {
      auto engine = EngineRegistry::create(engine_name);
      if (!engine) continue;
      auto run = (*engine)->run(netlist, context);
      if (!run) {
        std::fprintf(stderr, "%s on %s: %s\n", engine_name.c_str(), name,
                     run.status().message().c_str());
        continue;
      }
      add_rows(table, csv, name, engine_name, netlist, run->partition);
    }
    table.add_separator();
  }
  std::printf("== Ablation A3: partitioner vs classic baselines (K = %d) ==\n",
              kPlanes);
  table.print();
  write_results_csv("baseline_compare", csv);
}

void BM_Engine(::benchmark::State& state, const char* name) {
  const Netlist netlist = build_mapped("ksa8");
  auto engine = EngineRegistry::create(name).value();
  EngineContext context;
  context.num_planes = kPlanes;
  for (auto _ : state) {
    auto run = engine->run(netlist, context);
    ::benchmark::DoNotOptimize(run->discrete_total);
  }
}
BENCHMARK_CAPTURE(BM_Engine, gradient, "gradient")->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Engine, layered, "layered")->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Engine, fm_kway, "fm_kway")->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Engine, random, "random")->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace sfqpart::bench

int main(int argc, char** argv) {
  sfqpart::bench::print_comparison();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
