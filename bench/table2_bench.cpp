// Table II reproduction: the KSA4 netlist partitioned for K = 5..10,
// reporting d<=1, d<=floor(K/2), B_max, I_comp%, A_max, A_FS%. The paper's
// trends to reproduce: d<=1 falls as K grows; B_max and A_max fall;
// I_comp and A_FS rise; on average 92.1% of connections stay within
// floor(K/2) planes.
#include <cstdio>

#include "bench_util.h"

namespace sfqpart::bench {
namespace {

// Published Table II rows for the comparison print.
struct PaperRow {
  int k;
  double d1, dhalf, bmax, icomp, amax, afs;
};
constexpr PaperRow kPaper[] = {
    {5, 0.746, 0.975, 17.50, 0.0924, 0.0972, 0.0771},
    {6, 0.644, 0.949, 14.40, 0.0788, 0.0840, 0.1170},
    {7, 0.534, 0.898, 12.45, 0.0879, 0.0696, 0.0798},
    {8, 0.458, 0.958, 11.16, 0.1149, 0.0648, 0.1489},
    {9, 0.381, 0.839, 10.24, 0.1512, 0.0576, 0.1489},
    {10, 0.381, 0.907, 9.69, 0.2164, 0.0552, 0.2234},
};

void print_table2() {
  const Netlist netlist = build_mapped("ksa4");
  TablePrinter table({"K", "d<=1", "d<=K/2", "B_max (mA)", "I_comp (%)",
                      "A_max (mm2)", "A_FS (%)", "paper d<=1", "paper d<=K/2",
                      "paper I_comp"});
  CsvWriter csv({"k", "d1", "dhalf", "bmax_ma", "icomp_pct", "amax_mm2",
                 "afs_pct"});
  Averager dhalf;
  Averager paper_dhalf;

  for (const PaperRow& paper : kPaper) {
    const PartitionMetrics m = run_gd_metrics(netlist, paper.k);
    table.add_row({std::to_string(paper.k), fmt_percent(m.frac_within(1)),
                   fmt_percent(m.frac_within(m.half_k())),
                   fmt_double(m.bmax_ma, 2), fmt_percent(m.icomp_frac(), 2),
                   fmt_double(m.amax_mm2(), 4), fmt_percent(m.afs_frac(), 2),
                   fmt_percent(paper.d1), fmt_percent(paper.dhalf),
                   fmt_percent(paper.icomp, 2)});
    csv.add_row({std::to_string(paper.k), fmt_double(m.frac_within(1), 4),
                 fmt_double(m.frac_within(m.half_k()), 4), fmt_double(m.bmax_ma, 3),
                 fmt_double(100 * m.icomp_frac(), 2), fmt_double(m.amax_mm2(), 4),
                 fmt_double(100 * m.afs_frac(), 2)});
    dhalf.add(m.frac_within(m.half_k()));
    paper_dhalf.add(paper.dhalf);
  }
  table.add_separator();
  table.add_row({"AVG", "", fmt_percent(dhalf.mean()), "", "", "", "", "",
                 fmt_percent(paper_dhalf.mean()), ""});

  std::printf("== Table II: KSA4 partitioned for K = 5..10 "
              "(paper average d<=K/2: 92.1%%) ==\n");
  table.print();
  write_results_csv("table2", csv);
}

void BM_Ksa4Sweep(::benchmark::State& state) {
  const Netlist netlist = build_mapped("ksa4");
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(run_gd(netlist, k).discrete_total);
  }
}

BENCHMARK(BM_Ksa4Sweep)->DenseRange(5, 10)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace sfqpart::bench

int main(int argc, char** argv) {
  sfqpart::bench::print_table2();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
