// Ablation A4: optimizer scaling. The paper justifies first-order gradient
// descent over Newton's method by compute cost ("within an acceptable time
// window"); this bench measures wall time and iteration counts across the
// suite and across K, showing the near-linear O(iters * (G*K + |E|))
// behaviour of one descent step.
#include <cstdio>

#include "bench_util.h"
#include "core/soft_assign.h"
#include "netlist/stats.h"
#include "util/rng.h"

namespace sfqpart::bench {
namespace {

void print_scaling() {
  TablePrinter table({"Circuit", "G", "|E|", "K", "iterations", "converged"});
  CsvWriter csv({"circuit", "gates", "edges", "k", "iterations", "converged"});
  for (const char* name : {"ksa4", "ksa8", "ksa16", "ksa32", "id8", "c3540"}) {
    const Netlist netlist = build_mapped(name);
    for (const int k : {5, 10}) {
      const SolverResult result = run_gd(netlist, k);
      table.add_row({name, std::to_string(netlist.num_partitionable_gates()),
                     std::to_string(static_cast<int>(netlist.unique_edges().size())),
                     std::to_string(k), std::to_string(result.iterations),
                     result.converged ? "yes" : "no"});
      csv.add_row({name, std::to_string(netlist.num_partitionable_gates()),
                   std::to_string(static_cast<int>(netlist.unique_edges().size())),
                   std::to_string(k), std::to_string(result.iterations),
                   result.converged ? "1" : "0"});
    }
  }
  std::printf("== Ablation A4: optimizer iteration counts across the suite ==\n");
  table.print();
  write_results_csv("scaling", csv);
}

// Wall-time scaling over circuit size at K = 5.
void BM_PartitionScaling(::benchmark::State& state, const char* name) {
  const Netlist netlist = build_mapped(name);
  SolverConfig options;
  options.restarts = 1;
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(
        Solver(options).run(netlist)->discrete_total);
  }
  state.counters["gates"] = netlist.num_partitionable_gates();
  state.counters["edges"] = static_cast<double>(netlist.unique_edges().size());
}
BENCHMARK_CAPTURE(BM_PartitionScaling, ksa4, "ksa4")->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PartitionScaling, ksa8, "ksa8")->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PartitionScaling, ksa16, "ksa16")->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PartitionScaling, ksa32, "ksa32")->Unit(::benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PartitionScaling, c3540, "c3540")->Unit(::benchmark::kMillisecond);

// Wall-time scaling over K for a fixed circuit.
void BM_KScaling(::benchmark::State& state) {
  const Netlist netlist = build_mapped("c432");
  SolverConfig options;
  options.num_planes = static_cast<int>(state.range(0));
  options.restarts = 1;
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(
        Solver(options).run(netlist)->discrete_total);
  }
}
BENCHMARK(BM_KScaling)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Unit(::benchmark::kMillisecond);

// One gradient evaluation in isolation (the optimizer's inner loop body).
void BM_GradientStep(::benchmark::State& state, const char* name) {
  const Netlist netlist = build_mapped(name);
  const PartitionProblem problem = PartitionProblem::from_netlist(netlist, 5);
  const CostModel model(problem, CostWeights{});
  Rng rng(1);
  const Matrix w = random_soft_assignment(problem.num_gates, 5, rng);
  Matrix grad;
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(model.evaluate_with_gradient(w, grad).f1);
  }
}
BENCHMARK_CAPTURE(BM_GradientStep, ksa8, "ksa8")->Unit(::benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GradientStep, c3540, "c3540")->Unit(::benchmark::kMicrosecond);

}  // namespace
}  // namespace sfqpart::bench

int main(int argc, char** argv) {
  sfqpart::bench::print_scaling();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
