// Fig. 1 reproduction (E4): the paper's only figure illustrates the
// current-recycling stack -- serially biased ground planes, dummy loads,
// and driver/receiver coupling between adjacent planes. This bench
// regenerates that figure's content as data for a real partitioned
// circuit: the ASCII stack, per-boundary coupling-pair counts, and the
// supply/pad arithmetic.
#include <cstdio>

#include "bench_util.h"
#include "recycling/bias_plan.h"
#include "recycling/coupling.h"

namespace sfqpart::bench {
namespace {

constexpr const char* kCircuit = "ksa8";
constexpr int kPlanes = 4;

void print_fig1() {
  const Netlist netlist = build_mapped(kCircuit);
  const SolverResult result = run_gd(netlist, kPlanes);
  const BiasPlan plan = make_bias_plan(netlist, result.partition);
  const CouplingReport coupling = plan_coupling(netlist, result.partition);

  std::printf("== Fig. 1: current recycling stack for %s, K = %d ==\n\n",
              kCircuit, kPlanes);
  std::fputs(format_bias_plan(plan).c_str(), stdout);
  std::printf("\n");
  std::fputs(format_coupling_report(coupling).c_str(), stdout);

  CsvWriter csv({"plane", "gates", "bias_ma", "dummy_ma", "potential_mv",
                 "pairs_to_next"});
  for (const PlaneBias& plane : plan.planes) {
    const std::size_t boundary = static_cast<std::size_t>(plane.plane);
    const int pairs = boundary < coupling.pairs_per_boundary.size()
                          ? coupling.pairs_per_boundary[boundary]
                          : 0;
    csv.add_row({std::to_string(plane.plane), std::to_string(plane.gates),
                 fmt_double(plane.bias_ma, 2), fmt_double(plane.dummy_ma, 2),
                 fmt_double(plane.potential_mv, 1), std::to_string(pairs)});
  }
  write_results_csv("fig1_stack", csv);
}

void BM_BiasPlan(::benchmark::State& state) {
  const Netlist netlist = build_mapped(kCircuit);
  const SolverResult result = run_gd(netlist, kPlanes);
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(
        make_bias_plan(netlist, result.partition).total_dummy_ma);
  }
}
BENCHMARK(BM_BiasPlan)->Unit(::benchmark::kMicrosecond);

void BM_CouplingPlan(::benchmark::State& state) {
  const Netlist netlist = build_mapped(kCircuit);
  const SolverResult result = run_gd(netlist, kPlanes);
  for (auto _ : state) {
    ::benchmark::DoNotOptimize(plan_coupling(netlist, result.partition).total_pairs);
  }
}
BENCHMARK(BM_CouplingPlan)->Unit(::benchmark::kMicrosecond);

}  // namespace
}  // namespace sfqpart::bench

int main(int argc, char** argv) {
  sfqpart::bench::print_fig1();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
